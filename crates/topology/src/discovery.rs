//! The topology-discovery tool.
//!
//! The paper deliberately abstracts the discovery mechanism (mtrace, SNMP,
//! MHealth, mrtree, …): *"Our algorithm concerns itself only with the
//! information and not how it was acquired."* What it does model is the
//! information being **old**: Fig. 10 studies staleness from 2 s to 18 s.
//!
//! [`DiscoveryTool`] therefore archives ground-truth snapshots of the
//! simulator's multicast state as they are captured and answers queries with
//! the newest snapshot at least `staleness` old — a delayed oracle, which is
//! exactly the paper's model of an imperfect tool.

use netsim::sim::Network;
use netsim::{DirLinkId, GroupId, GroupSnapshot, NodeId, SimDuration, SimTime};
use std::collections::VecDeque;

/// A directed link as seen by the discovery tool (no capacity: the paper
/// assumes link capacities are *not* available and must be estimated).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkView {
    pub id: DirLinkId,
    pub from: NodeId,
    pub to: NodeId,
}

/// One snapshot of the domain: physical links plus every group's
/// distribution tree and membership.
#[derive(Clone, Debug)]
pub struct TopologyView {
    /// When the snapshot was taken.
    pub time: SimTime,
    /// All directed links in the domain.
    pub links: Vec<LinkView>,
    /// Per-group distribution state.
    pub groups: Vec<GroupSnapshot>,
}

impl TopologyView {
    /// Capture the ground truth right now.
    ///
    /// A partially-failed network yields a view with the failed pieces
    /// missing rather than a panic: down links, links touching a crashed
    /// node, and crashed members simply do not appear — exactly what a real
    /// discovery tool would (fail to) see. On a fault-free network every
    /// filter keeps everything, so the capture is identical to the naive
    /// one.
    pub fn capture(net: &Network, now: SimTime) -> Self {
        let links: Vec<LinkView> = (0..net.link_count() as u32)
            .filter_map(|i| {
                let id = DirLinkId(i);
                let (from, to) = (net.link_tail(id), net.link_head(id));
                let alive = net.link_is_up(id) && net.node_is_up(from) && net.node_is_up(to);
                alive.then_some(LinkView { id, from, to })
            })
            .collect();
        let kept: std::collections::HashSet<DirLinkId> = links.iter().map(|l| l.id).collect();
        let groups = net
            .multicast_snapshot()
            .into_iter()
            .map(|g| {
                let netsim::GroupSnapshot { group, root, active_links, member_nodes } = g;
                netsim::GroupSnapshot {
                    group,
                    root,
                    active_links: active_links.into_iter().filter(|l| kept.contains(l)).collect(),
                    member_nodes: member_nodes.into_iter().filter(|&n| net.node_is_up(n)).collect(),
                }
            })
            .collect();
        TopologyView { time: now, links, groups }
    }

    /// The snapshot of one group, if it exists.
    pub fn group(&self, g: GroupId) -> Option<&GroupSnapshot> {
        self.groups.iter().find(|s| s.group == g)
    }

    /// Endpoints of a directed link.
    pub fn link(&self, id: DirLinkId) -> Option<LinkView> {
        self.links.iter().copied().find(|l| l.id == id)
    }

    /// Restrict the view to one administrative domain (the paper's Fig. 3:
    /// "multiple controller agents, each concerned with one particular
    /// administrative domain", each unaware of the others).
    ///
    /// Links with an endpoint outside `domain` disappear; each group's
    /// member list is filtered; and the group root is re-based onto the
    /// **domain ingress** — the node inside the domain through which the
    /// session enters (the forest root whose subtree contains the domain's
    /// members). A controller built on a restricted view manages only its
    /// own subtree, exactly as the paper prescribes.
    pub fn restrict(&self, domain: &std::collections::HashSet<NodeId>) -> TopologyView {
        let links: Vec<LinkView> = self
            .links
            .iter()
            .copied()
            .filter(|l| domain.contains(&l.from) && domain.contains(&l.to))
            .collect();
        let kept: std::collections::HashSet<DirLinkId> = links.iter().map(|l| l.id).collect();
        let groups = self
            .groups
            .iter()
            .map(|g| {
                let active_links: Vec<DirLinkId> =
                    g.active_links.iter().copied().filter(|l| kept.contains(l)).collect();
                let member_nodes: Vec<NodeId> =
                    g.member_nodes.iter().copied().filter(|n| domain.contains(n)).collect();
                let root = if domain.contains(&g.root) {
                    g.root
                } else {
                    self.domain_ingress(&links, &active_links, &member_nodes).unwrap_or(g.root)
                };
                netsim::GroupSnapshot { group: g.group, root, active_links, member_nodes }
            })
            .collect();
        TopologyView { time: self.time, links, groups }
    }

    /// The forest root (a node with no retained in-link) whose subtree
    /// contains a member, among the retained active links.
    fn domain_ingress(
        &self,
        domain_links: &[LinkView],
        active: &[DirLinkId],
        members: &[NodeId],
    ) -> Option<NodeId> {
        let view_of = |id: &DirLinkId| domain_links.iter().find(|l| l.id == *id).copied();
        let heads: std::collections::HashSet<NodeId> =
            active.iter().filter_map(view_of).map(|l| l.to).collect();
        let mut candidates: Vec<NodeId> = active
            .iter()
            .filter_map(view_of)
            .map(|l| l.from)
            .filter(|n| !heads.contains(n))
            .collect();
        candidates.sort_unstable();
        candidates.dedup();
        // BFS each candidate's component; pick the one that reaches a member.
        for &cand in &candidates {
            let mut seen = std::collections::HashSet::from([cand]);
            let mut queue = std::collections::VecDeque::from([cand]);
            while let Some(n) = queue.pop_front() {
                if members.contains(&n) {
                    return Some(cand);
                }
                for l in active.iter().filter_map(view_of) {
                    if l.from == n && seen.insert(l.to) {
                        queue.push_back(l.to);
                    }
                }
            }
        }
        // No active links inside the domain yet: a lone member is its own
        // ingress.
        members.first().copied()
    }

    /// Every node mentioned anywhere in the view.
    fn known_nodes(&self) -> std::collections::HashSet<NodeId> {
        let mut nodes: std::collections::HashSet<NodeId> =
            self.links.iter().flat_map(|l| [l.from, l.to]).collect();
        for g in &self.groups {
            nodes.insert(g.root);
            nodes.extend(g.member_nodes.iter().copied());
        }
        nodes
    }

    /// The view with `hidden` nodes — and everything hanging off them —
    /// removed, modelling a discovery pass that could not reach part of the
    /// domain. Implemented as a restriction to the reachable remainder, so
    /// roots inside a hidden subtree are re-based exactly as for domains.
    pub fn without_nodes(&self, hidden: &[NodeId]) -> TopologyView {
        let mut domain = self.known_nodes();
        for n in hidden {
            domain.remove(n);
        }
        let mut v = self.restrict(&domain);
        // Hiding an interior node can disconnect a root from the surviving
        // members even though the root itself is still visible; re-base such
        // groups onto the ingress of the member-bearing remainder, as
        // `restrict` does for roots outside the domain.
        let rebased: Vec<Option<NodeId>> = v
            .groups
            .iter()
            .map(|g| {
                if g.member_nodes.is_empty()
                    || Self::root_reaches_member(&v.links, &g.active_links, g.root, &g.member_nodes)
                {
                    None
                } else {
                    v.domain_ingress(&v.links, &g.active_links, &g.member_nodes)
                }
            })
            .collect();
        for (g, r) in v.groups.iter_mut().zip(rebased) {
            if let Some(r) = r {
                g.root = r;
            }
        }
        v
    }

    /// Whether `root` reaches any of `members` along `active` links.
    fn root_reaches_member(
        links: &[LinkView],
        active: &[DirLinkId],
        root: NodeId,
        members: &[NodeId],
    ) -> bool {
        let view_of = |id: &DirLinkId| links.iter().find(|l| l.id == *id).copied();
        let mut seen = std::collections::HashSet::from([root]);
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(n) = queue.pop_front() {
            if members.contains(&n) {
                return true;
            }
            for l in active.iter().filter_map(view_of) {
                if l.from == n && seen.insert(l.to) {
                    queue.push_back(l.to);
                }
            }
        }
        false
    }
}

/// Why a discovery query produced no (full) answer.
#[derive(Clone, Debug)]
pub enum SnapshotError {
    /// The tool is down: no information at all this interval.
    Unavailable,
    /// The tool reached only part of the domain; the carried view omits the
    /// unreachable subtree.
    Partial(TopologyView),
}

/// One scheduled failure window of the discovery tool.
#[derive(Clone, Debug)]
enum Outage {
    /// Queries in `[from, until)` fail outright.
    Total { from: SimTime, until: SimTime },
    /// Queries in `[from, until)` see a view missing `hidden` subtrees.
    Partial { from: SimTime, until: SimTime, hidden: Vec<NodeId> },
}

/// Archives snapshots and serves them with a staleness delay.
pub struct DiscoveryTool {
    staleness: SimDuration,
    history: VecDeque<TopologyView>,
    max_history: usize,
    outages: Vec<Outage>,
}

impl DiscoveryTool {
    /// `staleness` is the minimum age of any served snapshot; zero gives an
    /// instantaneous oracle (the paper's baseline premise, which it calls
    /// "clearly unrealistic").
    pub fn new(staleness: SimDuration) -> Self {
        DiscoveryTool { staleness, history: VecDeque::new(), max_history: 64, outages: Vec::new() }
    }

    /// Schedule a total outage: queries in `[from, until)` return
    /// [`SnapshotError::Unavailable`].
    pub fn add_outage(&mut self, from: SimTime, until: SimTime) {
        assert!(until > from, "outage must end after it starts");
        self.outages.push(Outage::Total { from, until });
    }

    /// Schedule a partial outage: queries in `[from, until)` return a view
    /// with the `hidden` subtrees missing.
    pub fn add_partial_outage(&mut self, from: SimTime, until: SimTime, hidden: Vec<NodeId>) {
        assert!(until > from, "outage must end after it starts");
        self.outages.push(Outage::Partial { from, until, hidden });
    }

    /// The configured staleness.
    pub fn staleness(&self) -> SimDuration {
        self.staleness
    }

    /// Record a snapshot (call this periodically, e.g. once per controller
    /// interval). Old snapshots beyond what staleness can ever need are
    /// discarded.
    pub fn record(&mut self, view: TopologyView) {
        debug_assert!(
            self.history.back().is_none_or(|v| v.time <= view.time),
            "snapshots must be recorded in time order"
        );
        self.history.push_back(view);
        while self.history.len() > self.max_history {
            self.history.pop_front();
        }
    }

    /// The newest snapshot taken at or before `now - staleness`.
    ///
    /// Returns `None` when the tool has not been running long enough —
    /// early in a session even a perfect tool has produced nothing yet.
    pub fn query(&self, now: SimTime) -> Option<&TopologyView> {
        let cutoff = now.saturating_sub(self.staleness);
        self.history.iter().rev().find(|v| v.time <= cutoff)
    }

    /// Like [`DiscoveryTool::query`], but honouring the scheduled failure
    /// windows.
    ///
    /// `Ok(None)` still means a cold start (nothing captured yet);
    /// `Err(Unavailable)` means the tool itself is down right now; and
    /// `Err(Partial(view))` carries what the degraded tool could still see.
    /// With no outages scheduled this is exactly `Ok(self.query(now))`.
    pub fn query_checked(&self, now: SimTime) -> Result<Option<&TopologyView>, SnapshotError> {
        for o in &self.outages {
            match o {
                Outage::Total { from, until } if now >= *from && now < *until => {
                    return Err(SnapshotError::Unavailable);
                }
                Outage::Partial { from, until, hidden } if now >= *from && now < *until => {
                    return match self.query(now) {
                        Some(v) => Err(SnapshotError::Partial(v.without_nodes(hidden))),
                        None => Ok(None),
                    };
                }
                _ => {}
            }
        }
        Ok(self.query(now))
    }

    /// Number of archived snapshots.
    pub fn history_len(&self) -> usize {
        self.history.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view_at(secs: u64) -> TopologyView {
        TopologyView { time: SimTime::from_secs(secs), links: Vec::new(), groups: Vec::new() }
    }

    #[test]
    fn zero_staleness_serves_newest() {
        let mut d = DiscoveryTool::new(SimDuration::ZERO);
        d.record(view_at(1));
        d.record(view_at(2));
        d.record(view_at(3));
        let v = d.query(SimTime::from_secs(3)).unwrap();
        assert_eq!(v.time, SimTime::from_secs(3));
    }

    #[test]
    fn staleness_delays_the_view() {
        let mut d = DiscoveryTool::new(SimDuration::from_secs(4));
        for s in [0u64, 2, 4, 6, 8, 10] {
            d.record(view_at(s));
        }
        // At t=10, only snapshots taken at or before t=6 may be served.
        let v = d.query(SimTime::from_secs(10)).unwrap();
        assert_eq!(v.time, SimTime::from_secs(6));
    }

    #[test]
    fn too_early_returns_none() {
        let mut d = DiscoveryTool::new(SimDuration::from_secs(10));
        d.record(view_at(2));
        assert!(d.query(SimTime::from_secs(5)).is_none());
        // Eventually the old snapshot becomes servable.
        assert!(d.query(SimTime::from_secs(12)).is_some());
    }

    #[test]
    fn history_is_bounded() {
        let mut d = DiscoveryTool::new(SimDuration::ZERO);
        for s in 0..200 {
            d.record(view_at(s));
        }
        assert!(d.history_len() <= 64);
        // Newest snapshots survive the trimming.
        assert_eq!(d.query(SimTime::from_secs(500)).unwrap().time, SimTime::from_secs(199));
    }

    #[test]
    fn empty_tool_returns_none() {
        let d = DiscoveryTool::new(SimDuration::ZERO);
        assert!(d.query(SimTime::from_secs(100)).is_none());
    }

    /// Chain 0 -> 1 -> 2 -> 3 with members at 2 and 3; domain = {2, 3}.
    fn spanning_view() -> TopologyView {
        let n = |i: u32| NodeId(i);
        let l = |i: u32| DirLinkId(i);
        TopologyView {
            time: SimTime::ZERO,
            links: vec![
                LinkView { id: l(0), from: n(0), to: n(1) },
                LinkView { id: l(1), from: n(1), to: n(2) },
                LinkView { id: l(2), from: n(2), to: n(3) },
            ],
            groups: vec![netsim::GroupSnapshot {
                group: GroupId(0),
                root: n(0),
                active_links: vec![l(0), l(1), l(2)],
                member_nodes: vec![n(2), n(3)],
            }],
        }
    }

    #[test]
    fn restrict_rebases_the_root_on_the_domain_ingress() {
        let view = spanning_view();
        let domain = std::collections::HashSet::from([NodeId(2), NodeId(3)]);
        let r = view.restrict(&domain);
        // Only the 2 -> 3 link survives.
        assert_eq!(r.links.len(), 1);
        assert_eq!(r.links[0].id, DirLinkId(2));
        let g = &r.groups[0];
        assert_eq!(g.active_links, vec![DirLinkId(2)]);
        assert_eq!(g.member_nodes, vec![NodeId(2), NodeId(3)]);
        // The ingress (node 2) becomes the domain-local root.
        assert_eq!(g.root, NodeId(2));
    }

    #[test]
    fn restrict_keeps_the_root_when_it_is_inside() {
        let view = spanning_view();
        let domain = std::collections::HashSet::from([NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        let r = view.restrict(&domain);
        assert_eq!(r.groups[0].root, NodeId(0));
        assert_eq!(r.links.len(), 3);
    }

    #[test]
    fn capture_reflects_link_and_node_faults() {
        use netsim::{App, Ctx, FaultKind, FaultPlan, LinkConfig, NetworkBuilder, SimConfig};
        struct Joiner {
            group: GroupId,
        }
        impl App for Joiner {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.join(self.group);
            }
        }
        let mut b = NetworkBuilder::new(SimConfig::default());
        let s = b.add_node("src");
        let m = b.add_node("mid");
        let r = b.add_node("rcv");
        let (sm, _) = b.add_link(s, m, LinkConfig::kbps(100.0));
        b.add_link(m, r, LinkConfig::kbps(100.0));
        let mut sim = b.build();
        let g = sim.create_group(s);
        sim.add_app(r, Box::new(Joiner { group: g }));
        sim.run_until(SimTime::from_secs(1));
        let clean = TopologyView::capture(sim.network(), sim.now());
        assert_eq!(clean.links.len(), 4);
        assert_eq!(clean.group(g).unwrap().member_nodes, vec![r]);
        assert_eq!(clean.group(g).unwrap().active_links.len(), 2);

        // Take the src->mid half down: it vanishes from the capture, and so
        // does its entry in the active tree.
        sim.install_faults(&FaultPlan::new().at(SimTime::from_secs(2), FaultKind::LinkDown(sm)));
        sim.run_until(SimTime::from_secs(3));
        let faulted = TopologyView::capture(sim.network(), sim.now());
        assert_eq!(faulted.links.len(), 3);
        assert!(faulted.link(sm).is_none());
        assert_eq!(faulted.group(g).unwrap().active_links.len(), 1);

        // Crash the receiver's node: its links and membership vanish too.
        sim.install_faults(&FaultPlan::new().at(SimTime::from_secs(4), FaultKind::NodeCrash(r)));
        sim.run_until(SimTime::from_secs(5));
        let crashed = TopologyView::capture(sim.network(), sim.now());
        assert_eq!(crashed.links.len(), 1);
        assert!(crashed.group(g).unwrap().member_nodes.is_empty());
    }

    #[test]
    fn without_nodes_drops_the_subtree_and_rebases() {
        let view = spanning_view();
        let partial = view.without_nodes(&[NodeId(1)]);
        // Links touching node 1 vanish; 2 -> 3 survives.
        assert_eq!(partial.links.len(), 1);
        assert_eq!(partial.links[0].id, DirLinkId(2));
        let g = &partial.groups[0];
        assert_eq!(g.member_nodes, vec![NodeId(2), NodeId(3)]);
        // The surviving subtree's ingress becomes the root.
        assert_eq!(g.root, NodeId(2));
    }

    #[test]
    fn query_checked_honours_outage_windows() {
        let mut d = DiscoveryTool::new(SimDuration::ZERO);
        d.record(view_at(1));
        d.add_outage(SimTime::from_secs(5), SimTime::from_secs(8));
        assert!(matches!(d.query_checked(SimTime::from_secs(4)), Ok(Some(_))));
        assert!(matches!(d.query_checked(SimTime::from_secs(5)), Err(SnapshotError::Unavailable)));
        assert!(matches!(d.query_checked(SimTime::from_secs(7)), Err(SnapshotError::Unavailable)));
        assert!(matches!(d.query_checked(SimTime::from_secs(8)), Ok(Some(_))));
    }

    #[test]
    fn query_checked_partial_hides_the_subtree() {
        let mut d = DiscoveryTool::new(SimDuration::ZERO);
        d.record(spanning_view());
        d.add_partial_outage(SimTime::ZERO, SimTime::from_secs(10), vec![NodeId(3)]);
        match d.query_checked(SimTime::from_secs(2)) {
            Err(SnapshotError::Partial(v)) => {
                assert!(v.links.iter().all(|l| l.from != NodeId(3) && l.to != NodeId(3)));
                assert_eq!(v.groups[0].member_nodes, vec![NodeId(2)]);
            }
            other => panic!("expected a partial view, got {other:?}"),
        }
        // A cold start during a partial outage still reads as a cold start.
        let mut cold = DiscoveryTool::new(SimDuration::from_secs(30));
        cold.add_partial_outage(SimTime::ZERO, SimTime::from_secs(10), vec![NodeId(3)]);
        assert!(matches!(cold.query_checked(SimTime::from_secs(2)), Ok(None)));
    }

    #[test]
    fn restrict_with_no_active_links_uses_a_member_as_ingress() {
        let mut view = spanning_view();
        view.groups[0].active_links.clear();
        let domain = std::collections::HashSet::from([NodeId(3)]);
        let r = view.restrict(&domain);
        assert_eq!(r.groups[0].root, NodeId(3));
        assert!(r.links.is_empty());
    }
}
