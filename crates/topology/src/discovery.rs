//! The topology-discovery tool.
//!
//! The paper deliberately abstracts the discovery mechanism (mtrace, SNMP,
//! MHealth, mrtree, …): *"Our algorithm concerns itself only with the
//! information and not how it was acquired."* What it does model is the
//! information being **old**: Fig. 10 studies staleness from 2 s to 18 s.
//!
//! [`DiscoveryTool`] therefore archives ground-truth snapshots of the
//! simulator's multicast state as they are captured and answers queries with
//! the newest snapshot at least `staleness` old — a delayed oracle, which is
//! exactly the paper's model of an imperfect tool.

use netsim::sim::Network;
use netsim::{DirLinkId, GroupId, GroupSnapshot, NodeId, SimDuration, SimTime};
use std::collections::VecDeque;

/// A directed link as seen by the discovery tool (no capacity: the paper
/// assumes link capacities are *not* available and must be estimated).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkView {
    pub id: DirLinkId,
    pub from: NodeId,
    pub to: NodeId,
}

/// One snapshot of the domain: physical links plus every group's
/// distribution tree and membership.
#[derive(Clone, Debug)]
pub struct TopologyView {
    /// When the snapshot was taken.
    pub time: SimTime,
    /// All directed links in the domain.
    pub links: Vec<LinkView>,
    /// Per-group distribution state.
    pub groups: Vec<GroupSnapshot>,
}

impl TopologyView {
    /// Capture the ground truth right now.
    pub fn capture(net: &Network, now: SimTime) -> Self {
        let links = (0..net.link_count() as u32)
            .map(|i| {
                let id = DirLinkId(i);
                LinkView { id, from: net.link_tail(id), to: net.link_head(id) }
            })
            .collect();
        TopologyView { time: now, links, groups: net.multicast_snapshot() }
    }

    /// The snapshot of one group, if it exists.
    pub fn group(&self, g: GroupId) -> Option<&GroupSnapshot> {
        self.groups.iter().find(|s| s.group == g)
    }

    /// Endpoints of a directed link.
    pub fn link(&self, id: DirLinkId) -> Option<LinkView> {
        self.links.iter().copied().find(|l| l.id == id)
    }

    /// Restrict the view to one administrative domain (the paper's Fig. 3:
    /// "multiple controller agents, each concerned with one particular
    /// administrative domain", each unaware of the others).
    ///
    /// Links with an endpoint outside `domain` disappear; each group's
    /// member list is filtered; and the group root is re-based onto the
    /// **domain ingress** — the node inside the domain through which the
    /// session enters (the forest root whose subtree contains the domain's
    /// members). A controller built on a restricted view manages only its
    /// own subtree, exactly as the paper prescribes.
    pub fn restrict(&self, domain: &std::collections::HashSet<NodeId>) -> TopologyView {
        let links: Vec<LinkView> = self
            .links
            .iter()
            .copied()
            .filter(|l| domain.contains(&l.from) && domain.contains(&l.to))
            .collect();
        let kept: std::collections::HashSet<DirLinkId> = links.iter().map(|l| l.id).collect();
        let groups = self
            .groups
            .iter()
            .map(|g| {
                let active_links: Vec<DirLinkId> =
                    g.active_links.iter().copied().filter(|l| kept.contains(l)).collect();
                let member_nodes: Vec<NodeId> =
                    g.member_nodes.iter().copied().filter(|n| domain.contains(n)).collect();
                let root = if domain.contains(&g.root) {
                    g.root
                } else {
                    self.domain_ingress(&links, &active_links, &member_nodes).unwrap_or(g.root)
                };
                netsim::GroupSnapshot { group: g.group, root, active_links, member_nodes }
            })
            .collect();
        TopologyView { time: self.time, links, groups }
    }

    /// The forest root (a node with no retained in-link) whose subtree
    /// contains a member, among the retained active links.
    fn domain_ingress(
        &self,
        domain_links: &[LinkView],
        active: &[DirLinkId],
        members: &[NodeId],
    ) -> Option<NodeId> {
        let view_of = |id: &DirLinkId| domain_links.iter().find(|l| l.id == *id).copied();
        let heads: std::collections::HashSet<NodeId> =
            active.iter().filter_map(view_of).map(|l| l.to).collect();
        let mut candidates: Vec<NodeId> = active
            .iter()
            .filter_map(view_of)
            .map(|l| l.from)
            .filter(|n| !heads.contains(n))
            .collect();
        candidates.sort_unstable();
        candidates.dedup();
        // BFS each candidate's component; pick the one that reaches a member.
        for &cand in &candidates {
            let mut seen = std::collections::HashSet::from([cand]);
            let mut queue = std::collections::VecDeque::from([cand]);
            while let Some(n) = queue.pop_front() {
                if members.contains(&n) {
                    return Some(cand);
                }
                for l in active.iter().filter_map(view_of) {
                    if l.from == n && seen.insert(l.to) {
                        queue.push_back(l.to);
                    }
                }
            }
        }
        // No active links inside the domain yet: a lone member is its own
        // ingress.
        members.first().copied()
    }
}

/// Archives snapshots and serves them with a staleness delay.
pub struct DiscoveryTool {
    staleness: SimDuration,
    history: VecDeque<TopologyView>,
    max_history: usize,
}

impl DiscoveryTool {
    /// `staleness` is the minimum age of any served snapshot; zero gives an
    /// instantaneous oracle (the paper's baseline premise, which it calls
    /// "clearly unrealistic").
    pub fn new(staleness: SimDuration) -> Self {
        DiscoveryTool { staleness, history: VecDeque::new(), max_history: 64 }
    }

    /// The configured staleness.
    pub fn staleness(&self) -> SimDuration {
        self.staleness
    }

    /// Record a snapshot (call this periodically, e.g. once per controller
    /// interval). Old snapshots beyond what staleness can ever need are
    /// discarded.
    pub fn record(&mut self, view: TopologyView) {
        debug_assert!(
            self.history.back().is_none_or(|v| v.time <= view.time),
            "snapshots must be recorded in time order"
        );
        self.history.push_back(view);
        while self.history.len() > self.max_history {
            self.history.pop_front();
        }
    }

    /// The newest snapshot taken at or before `now - staleness`.
    ///
    /// Returns `None` when the tool has not been running long enough —
    /// early in a session even a perfect tool has produced nothing yet.
    pub fn query(&self, now: SimTime) -> Option<&TopologyView> {
        let cutoff = now.saturating_sub(self.staleness);
        self.history.iter().rev().find(|v| v.time <= cutoff)
    }

    /// Number of archived snapshots.
    pub fn history_len(&self) -> usize {
        self.history.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view_at(secs: u64) -> TopologyView {
        TopologyView { time: SimTime::from_secs(secs), links: Vec::new(), groups: Vec::new() }
    }

    #[test]
    fn zero_staleness_serves_newest() {
        let mut d = DiscoveryTool::new(SimDuration::ZERO);
        d.record(view_at(1));
        d.record(view_at(2));
        d.record(view_at(3));
        let v = d.query(SimTime::from_secs(3)).unwrap();
        assert_eq!(v.time, SimTime::from_secs(3));
    }

    #[test]
    fn staleness_delays_the_view() {
        let mut d = DiscoveryTool::new(SimDuration::from_secs(4));
        for s in [0u64, 2, 4, 6, 8, 10] {
            d.record(view_at(s));
        }
        // At t=10, only snapshots taken at or before t=6 may be served.
        let v = d.query(SimTime::from_secs(10)).unwrap();
        assert_eq!(v.time, SimTime::from_secs(6));
    }

    #[test]
    fn too_early_returns_none() {
        let mut d = DiscoveryTool::new(SimDuration::from_secs(10));
        d.record(view_at(2));
        assert!(d.query(SimTime::from_secs(5)).is_none());
        // Eventually the old snapshot becomes servable.
        assert!(d.query(SimTime::from_secs(12)).is_some());
    }

    #[test]
    fn history_is_bounded() {
        let mut d = DiscoveryTool::new(SimDuration::ZERO);
        for s in 0..200 {
            d.record(view_at(s));
        }
        assert!(d.history_len() <= 64);
        // Newest snapshots survive the trimming.
        assert_eq!(d.query(SimTime::from_secs(500)).unwrap().time, SimTime::from_secs(199));
    }

    #[test]
    fn empty_tool_returns_none() {
        let d = DiscoveryTool::new(SimDuration::ZERO);
        assert!(d.query(SimTime::from_secs(100)).is_none());
    }

    /// Chain 0 -> 1 -> 2 -> 3 with members at 2 and 3; domain = {2, 3}.
    fn spanning_view() -> TopologyView {
        let n = |i: u32| NodeId(i);
        let l = |i: u32| DirLinkId(i);
        TopologyView {
            time: SimTime::ZERO,
            links: vec![
                LinkView { id: l(0), from: n(0), to: n(1) },
                LinkView { id: l(1), from: n(1), to: n(2) },
                LinkView { id: l(2), from: n(2), to: n(3) },
            ],
            groups: vec![netsim::GroupSnapshot {
                group: GroupId(0),
                root: n(0),
                active_links: vec![l(0), l(1), l(2)],
                member_nodes: vec![n(2), n(3)],
            }],
        }
    }

    #[test]
    fn restrict_rebases_the_root_on_the_domain_ingress() {
        let view = spanning_view();
        let domain = std::collections::HashSet::from([NodeId(2), NodeId(3)]);
        let r = view.restrict(&domain);
        // Only the 2 -> 3 link survives.
        assert_eq!(r.links.len(), 1);
        assert_eq!(r.links[0].id, DirLinkId(2));
        let g = &r.groups[0];
        assert_eq!(g.active_links, vec![DirLinkId(2)]);
        assert_eq!(g.member_nodes, vec![NodeId(2), NodeId(3)]);
        // The ingress (node 2) becomes the domain-local root.
        assert_eq!(g.root, NodeId(2));
    }

    #[test]
    fn restrict_keeps_the_root_when_it_is_inside() {
        let view = spanning_view();
        let domain = std::collections::HashSet::from([NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        let r = view.restrict(&domain);
        assert_eq!(r.groups[0].root, NodeId(0));
        assert_eq!(r.links.len(), 3);
    }

    #[test]
    fn restrict_with_no_active_links_uses_a_member_as_ingress() {
        let mut view = spanning_view();
        view.groups[0].active_links.clear();
        let domain = std::collections::HashSet::from([NodeId(3)]);
        let r = view.restrict(&domain);
        assert_eq!(r.groups[0].root, NodeId(3));
        assert!(r.links.is_empty());
    }
}
