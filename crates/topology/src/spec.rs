//! Declarative topology descriptions.
//!
//! A [`TopoSpec`] is a plain description of nodes, roles, and links that can
//! be instantiated into a live [`netsim::Simulator`]. Keeping the
//! description separate from the simulator lets generators, tests, and the
//! oracle baseline all reason about the *intended* topology (including true
//! link capacities, which the running TopoSense controller is not allowed to
//! see).

use netsim::sim::{NetworkBuilder, SimConfig, Simulator};
use netsim::{DirLinkId, LinkConfig, NodeId};

/// What an instantiated node will host.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeRole {
    /// Pure router, no agents.
    Router,
    /// Hosts the source of `session`.
    Source { session: u32 },
    /// Hosts one receiver of `session`; `set` groups receivers that share a
    /// bandwidth constraint (Topology A has two sets).
    Receiver { session: u32, set: u32 },
    /// Hosts the controller agent.
    Controller,
}

/// One node of the spec.
#[derive(Clone, Debug)]
pub struct NodeSpec {
    pub label: String,
    pub roles: Vec<NodeRole>,
}

/// One duplex link of the spec, indexing into [`TopoSpec::nodes`].
#[derive(Clone, Copy, Debug)]
pub struct LinkSpec {
    pub a: usize,
    pub b: usize,
    pub config: LinkConfig,
}

/// A whole topology with roles.
#[derive(Clone, Debug)]
pub struct TopoSpec {
    pub name: String,
    pub nodes: Vec<NodeSpec>,
    pub links: Vec<LinkSpec>,
}

/// A spec instantiated into a simulator.
pub struct Built {
    pub sim: Simulator,
    /// Spec node index -> simulator node id.
    pub node_ids: Vec<NodeId>,
    /// Spec link index -> the two directed halves `(a->b, b->a)`.
    pub link_ids: Vec<(DirLinkId, DirLinkId)>,
}

impl TopoSpec {
    pub fn new(name: impl Into<String>) -> Self {
        TopoSpec { name: name.into(), nodes: Vec::new(), links: Vec::new() }
    }

    /// Add a node; returns its spec index.
    pub fn node(&mut self, label: impl Into<String>, roles: Vec<NodeRole>) -> usize {
        self.nodes.push(NodeSpec { label: label.into(), roles });
        self.nodes.len() - 1
    }

    /// Add a duplex link between spec nodes `a` and `b`.
    pub fn link(&mut self, a: usize, b: usize, config: LinkConfig) -> usize {
        assert!(a < self.nodes.len() && b < self.nodes.len(), "link endpoint out of range");
        self.links.push(LinkSpec { a, b, config });
        self.links.len() - 1
    }

    /// Source nodes: `(spec index, session)`.
    pub fn sources(&self) -> Vec<(usize, u32)> {
        self.roles_of(|r| match r {
            NodeRole::Source { session } => Some(session),
            _ => None,
        })
    }

    /// Receiver nodes: `(spec index, (session, set))`.
    pub fn receivers(&self) -> Vec<(usize, (u32, u32))> {
        self.roles_of(|r| match r {
            NodeRole::Receiver { session, set } => Some((session, set)),
            _ => None,
        })
    }

    /// The controller's spec index (panics if absent or duplicated).
    pub fn controller(&self) -> usize {
        let v = self.roles_of(|r| if r == NodeRole::Controller { Some(()) } else { None });
        assert_eq!(v.len(), 1, "expected exactly one controller, found {}", v.len());
        v[0].0
    }

    /// Number of distinct sessions mentioned by sources.
    pub fn session_count(&self) -> usize {
        let mut ids: Vec<u32> = self.sources().into_iter().map(|(_, s)| s).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    fn roles_of<T>(&self, mut f: impl FnMut(NodeRole) -> Option<T>) -> Vec<(usize, T)> {
        let mut out = Vec::new();
        for (i, n) in self.nodes.iter().enumerate() {
            for &r in &n.roles {
                if let Some(t) = f(r) {
                    out.push((i, t));
                }
            }
        }
        out
    }

    /// Instantiate into a simulator.
    pub fn instantiate(&self, cfg: SimConfig) -> Built {
        let mut b = NetworkBuilder::new(cfg);
        let node_ids: Vec<NodeId> =
            self.nodes.iter().map(|n| b.add_node(n.label.clone())).collect();
        let link_ids: Vec<(DirLinkId, DirLinkId)> =
            self.links.iter().map(|l| b.add_link(node_ids[l.a], node_ids[l.b], l.config)).collect();
        Built { sim: b.build(), node_ids, link_ids }
    }

    /// Replace the queue discipline on every link (ablation knob for
    /// drop-tail vs. layer-priority dropping).
    pub fn with_discipline_everywhere(mut self, d: netsim::QueueDiscipline) -> Self {
        for l in &mut self.links {
            l.config.discipline = d;
        }
        self
    }

    /// The true capacity (bits/s) of the directed link `a -> b` between two
    /// spec nodes, if such a link exists. Used by the oracle, never by the
    /// controller.
    pub fn capacity_between(&self, a: usize, b: usize) -> Option<f64> {
        self.links
            .iter()
            .find(|l| (l.a == a && l.b == b) || (l.a == b && l.b == a))
            .map(|l| l.config.bandwidth_bps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TopoSpec {
        let mut s = TopoSpec::new("tiny");
        let src = s.node("src", vec![NodeRole::Source { session: 0 }, NodeRole::Controller]);
        let mid = s.node("mid", vec![NodeRole::Router]);
        let rcv = s.node("rcv", vec![NodeRole::Receiver { session: 0, set: 0 }]);
        s.link(src, mid, LinkConfig::kbps(1000.0));
        s.link(mid, rcv, LinkConfig::kbps(100.0));
        s
    }

    #[test]
    fn role_queries() {
        let s = tiny();
        assert_eq!(s.sources(), vec![(0, 0)]);
        assert_eq!(s.receivers(), vec![(2, (0, 0))]);
        assert_eq!(s.controller(), 0);
        assert_eq!(s.session_count(), 1);
    }

    #[test]
    fn instantiation_maps_indices() {
        let s = tiny();
        let built = s.instantiate(SimConfig::default());
        assert_eq!(built.node_ids.len(), 3);
        assert_eq!(built.link_ids.len(), 2);
        let net = built.sim.network();
        assert_eq!(net.node_count(), 3);
        assert_eq!(net.link_count(), 4); // 2 duplex links
        assert_eq!(net.node_label(built.node_ids[0]), "src");
        // Directed halves point the right way.
        let (ab, ba) = built.link_ids[1];
        assert_eq!(net.link_tail(ab), built.node_ids[1]);
        assert_eq!(net.link_head(ab), built.node_ids[2]);
        assert_eq!(net.link_tail(ba), built.node_ids[2]);
    }

    #[test]
    fn capacity_lookup_is_direction_agnostic() {
        let s = tiny();
        assert_eq!(s.capacity_between(1, 2), Some(100_000.0));
        assert_eq!(s.capacity_between(2, 1), Some(100_000.0));
        assert_eq!(s.capacity_between(0, 2), None);
    }

    #[test]
    #[should_panic(expected = "exactly one controller")]
    fn missing_controller_panics() {
        let mut s = TopoSpec::new("none");
        s.node("a", vec![NodeRole::Router]);
        let _ = s.controller();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_link_panics() {
        let mut s = TopoSpec::new("bad");
        let a = s.node("a", vec![]);
        s.link(a, 5, LinkConfig::kbps(10.0));
    }
}
