//! Rooted trees over simulator nodes.
//!
//! Every stage of the TopoSense algorithm is a pass over a tree: congestion
//! states and demands flow **bottom-up**, bottleneck bandwidths and supplies
//! flow **top-down**. [`Tree`] stores nodes in BFS order so both passes are
//! simple slice iterations.

use netsim::NodeId;
use std::collections::HashMap;

/// Sentinel slot meaning "no parent" (only the root carries it).
const NO_SLOT: u32 = u32::MAX;

/// A rooted tree over [`NodeId`]s.
///
/// Nodes are stored in BFS order and addressed two ways: by [`NodeId`]
/// (the stable simulator identity) and by *slot* — the node's position in
/// the BFS order, a dense `0..len` index. Slots let per-interval passes
/// use plain `Vec`s instead of `HashMap`s: `slots()` is the top-down pass
/// order, `slots_bottom_up()` the bottom-up one, and because BFS appends
/// children contiguously, each node's children occupy the consecutive
/// slot range `child_slots(s)` (a CSR layout needing only one prefix-sum
/// array).
#[derive(Clone, Debug)]
pub struct Tree {
    root: NodeId,
    /// Nodes in BFS order from the root (root first); `order[slot]` is the
    /// node occupying `slot`.
    order: Vec<NodeId>,
    /// `NodeId -> slot`.
    slot: HashMap<NodeId, u32>,
    /// Parent slot per slot (`NO_SLOT` for the root).
    parent_slot: Vec<u32>,
    /// CSR child index: children of slot `s` are slots
    /// `child_start[s]..child_start[s + 1]`.
    child_start: Vec<u32>,
}

/// Error building a tree from an edge list.
#[derive(Debug, PartialEq, Eq)]
pub enum TreeError {
    /// A node was given two parents.
    TwoParents(NodeId),
    /// The root has an incoming edge.
    RootHasParent,
    /// An edge's parent is not reachable from the root (cycle or orphan).
    Disconnected(NodeId),
}

impl Tree {
    /// Build from `(parent, child)` edges rooted at `root`.
    ///
    /// Edges whose parent is unreachable from the root produce
    /// [`TreeError::Disconnected`]; duplicate parents produce
    /// [`TreeError::TwoParents`]. A root-only tree (no edges) is valid.
    pub fn from_edges(root: NodeId, edges: &[(NodeId, NodeId)]) -> Result<Self, TreeError> {
        let mut parent = HashMap::with_capacity(edges.len());
        let mut children: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for &(p, c) in edges {
            if c == root {
                return Err(TreeError::RootHasParent);
            }
            if parent.insert(c, p).is_some() {
                return Err(TreeError::TwoParents(c));
            }
            children.entry(p).or_default().push(c);
        }
        // BFS to establish order and check connectivity.
        let mut order = Vec::with_capacity(edges.len() + 1);
        order.push(root);
        let mut i = 0;
        while i < order.len() {
            let n = order[i];
            i += 1;
            if let Some(cs) = children.get(&n) {
                order.extend(cs.iter().copied());
            }
        }
        if order.len() != edges.len() + 1 {
            // Some edge's subtree never got visited.
            let unreachable = edges
                .iter()
                .map(|&(_, c)| c)
                .find(|c| !order.contains(c))
                .expect("count mismatch implies an unreachable child");
            return Err(TreeError::Disconnected(unreachable));
        }
        drop(parent);
        // Dense indexes. BFS appends each node's children as one contiguous
        // block, so the CSR child index is a prefix sum over child counts in
        // slot order.
        let mut slot = HashMap::with_capacity(order.len());
        for (i, &node) in order.iter().enumerate() {
            slot.insert(node, i as u32);
        }
        let mut child_start = Vec::with_capacity(order.len() + 1);
        child_start.push(1u32);
        for &node in &order {
            let n = children.get(&node).map_or(0, |cs| cs.len());
            child_start.push(child_start.last().unwrap() + n as u32);
        }
        let mut parent_slot = vec![NO_SLOT; order.len()];
        for s in 0..order.len() {
            for c in child_start[s]..child_start[s + 1] {
                parent_slot[c as usize] = s as u32;
            }
        }
        Ok(Tree { root, order, slot, parent_slot, child_start })
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes (including the root).
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True for a root-only tree.
    pub fn is_empty(&self) -> bool {
        self.order.len() == 1
    }

    /// Whether `node` is in the tree.
    pub fn contains(&self, node: NodeId) -> bool {
        self.slot.contains_key(&node)
    }

    /// The parent of `node` (`None` for the root or unknown nodes).
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        let s = self.slot_of(node)?;
        self.parent_slot_of(s).map(|p| self.order[p])
    }

    /// The children of `node`.
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        match self.slot_of(node) {
            Some(s) => &self.order[self.child_slots(s)],
            None => &[],
        }
    }

    /// True when `node` has no children.
    pub fn is_leaf(&self, node: NodeId) -> bool {
        self.children(node).is_empty()
    }

    /// The dense slot of `node` — its position in BFS order (`None` for
    /// unknown nodes). Slots are stable for the lifetime of the tree.
    pub fn slot_of(&self, node: NodeId) -> Option<usize> {
        self.slot.get(&node).map(|&s| s as usize)
    }

    /// The node occupying `slot` (panics on out-of-range slots).
    pub fn node_at(&self, slot: usize) -> NodeId {
        self.order[slot]
    }

    /// The parent's slot (`None` for the root slot).
    pub fn parent_slot_of(&self, slot: usize) -> Option<usize> {
        match self.parent_slot[slot] {
            NO_SLOT => None,
            p => Some(p as usize),
        }
    }

    /// The contiguous slot range holding the children of `slot`.
    pub fn child_slots(&self, slot: usize) -> std::ops::Range<usize> {
        self.child_start[slot] as usize..self.child_start[slot + 1] as usize
    }

    /// True when `slot` has no children.
    pub fn is_leaf_slot(&self, slot: usize) -> bool {
        self.child_start[slot] == self.child_start[slot + 1]
    }

    /// Slots in BFS order (the **top-down** pass order).
    pub fn slots(&self) -> std::ops::Range<usize> {
        0..self.order.len()
    }

    /// Slots in reverse BFS order (the **bottom-up** pass order: every
    /// child slot is visited before its parent slot).
    pub fn slots_bottom_up(&self) -> std::iter::Rev<std::ops::Range<usize>> {
        (0..self.order.len()).rev()
    }

    /// Nodes in BFS order, root first (the **top-down** pass order).
    pub fn top_down(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.order.iter().copied()
    }

    /// Nodes in reverse BFS order, leaves first (the **bottom-up** pass
    /// order: every child is visited before its parent).
    pub fn bottom_up(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.order.iter().rev().copied()
    }

    /// All leaves, in BFS order.
    pub fn leaves(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.order.iter().copied().filter(|&n| self.is_leaf(n))
    }

    /// Leaves of the subtree rooted at `node`.
    pub fn subtree_leaves(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![node];
        while let Some(n) = stack.pop() {
            if self.is_leaf(n) {
                out.push(n);
            } else {
                stack.extend(self.children(n).iter().copied());
            }
        }
        out
    }

    /// All nodes of the subtree rooted at `node` (including `node`).
    pub fn subtree(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![node];
        while let Some(n) = stack.pop() {
            out.push(n);
            stack.extend(self.children(n).iter().copied());
        }
        out
    }

    /// Hop depth of `node` below the root (root = 0).
    pub fn depth(&self, node: NodeId) -> usize {
        let mut d = 0;
        let mut cur = node;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// The path of nodes from the root to `node` (inclusive at both ends).
    pub fn path_from_root(&self, node: NodeId) -> Vec<NodeId> {
        let mut path = vec![node];
        let mut cur = node;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// Whether `ancestor` lies on the path from the root to `node`
    /// (a node is its own ancestor).
    pub fn is_ancestor(&self, ancestor: NodeId, node: NodeId) -> bool {
        let mut cur = Some(node);
        while let Some(n) = cur {
            if n == ancestor {
                return true;
            }
            cur = self.parent(n);
        }
        false
    }

    /// Lowest common ancestor of two nodes (both must be in the tree).
    pub fn lca(&self, a: NodeId, b: NodeId) -> NodeId {
        let path_a = self.path_from_root(a);
        let path_b = self.path_from_root(b);
        let mut last = self.root;
        for (&x, &y) in path_a.iter().zip(path_b.iter()) {
            if x == y {
                last = x;
            } else {
                break;
            }
        }
        last
    }

    /// Structural equality over the dense layout: same root, same BFS
    /// order, same CSR child index. Two trees that compare equal here have
    /// identical slot assignments, so per-slot caches built against one
    /// remain valid against the other. Deliberately skips the
    /// `NodeId -> slot` map (fully determined by `order`) so the check is
    /// three contiguous memcmp-style comparisons, cheap enough to run
    /// every interval.
    pub fn structure_eq(&self, other: &Tree) -> bool {
        self.root == other.root
            && self.order == other.order
            && self.child_start == other.child_start
    }

    /// Mark `slot` and every ancestor up to the root in `dirty`. Walks the
    /// parent chain and stops at the first slot already marked — repeated
    /// calls over a batch of dirty slots therefore cost O(total newly
    /// marked), not O(depth) each.
    pub fn mark_ancestors(&self, slot: usize, dirty: &mut DirtySet) {
        let mut s = slot;
        loop {
            if !dirty.mark(s) {
                return;
            }
            match self.parent_slot_of(s) {
                Some(p) => s = p,
                None => return,
            }
        }
    }

    /// Mark `slot` and every slot of its subtree in `dirty`. No pruning at
    /// already-marked slots: a slot marked by an earlier, unrelated pass
    /// (e.g. an ancestor walk) says nothing about its descendants.
    pub fn mark_subtree(&self, slot: usize, dirty: &mut DirtySet) {
        let mut stack = vec![slot];
        while let Some(s) = stack.pop() {
            dirty.mark(s);
            stack.extend(self.child_slots(s));
        }
    }

    /// Graphviz DOT rendering (debugging aid); `label` decorates each node.
    pub fn to_dot(&self, mut label: impl FnMut(NodeId) -> String) -> String {
        let mut out = String::from("digraph tree {\n  rankdir=TB;\n");
        for n in self.top_down() {
            out.push_str(&format!("  n{} [label=\"{}\"];\n", n.0, label(n)));
        }
        for n in self.top_down() {
            if let Some(p) = self.parent(n) {
                out.push_str(&format!("  n{} -> n{};\n", p.0, n.0));
            }
        }
        out.push_str("}\n");
        out
    }
}

/// A reusable set of dirty tree slots.
///
/// Built for the incremental recomputation path: membership is an
/// epoch-stamped array (no per-interval clearing), and the marked slots are
/// also kept as a list so callers can iterate exactly the dirty slots
/// without scanning the whole tree. [`DirtySet::begin`] starts a fresh
/// interval in O(1) amortized; the stamp array is only rewritten when the
/// tree grows or the epoch counter wraps.
#[derive(Clone, Debug, Default)]
pub struct DirtySet {
    /// `stamp[slot] == epoch` means the slot is marked this interval.
    stamp: Vec<u32>,
    epoch: u32,
    /// The marked slots, in marking order (deduplicated by `mark`).
    slots: Vec<u32>,
}

impl DirtySet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a fresh marking round over a tree of `len` slots. Previous
    /// marks are forgotten without touching the stamp array (epoch bump);
    /// the array is re-zeroed only on growth or epoch wrap-around.
    pub fn begin(&mut self, len: usize) {
        self.slots.clear();
        if self.stamp.len() < len || self.epoch == u32::MAX {
            self.stamp.clear();
            self.stamp.resize(len, 0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    /// Mark `slot`; returns `true` when it was not already marked.
    pub fn mark(&mut self, slot: usize) -> bool {
        if self.stamp[slot] == self.epoch {
            return false;
        }
        self.stamp[slot] = self.epoch;
        self.slots.push(slot as u32);
        true
    }

    /// Whether `slot` is marked this round.
    pub fn contains(&self, slot: usize) -> bool {
        self.stamp.get(slot).is_some_and(|&e| e == self.epoch)
    }

    /// The marked slots (in marking order unless sorted).
    pub fn slots(&self) -> &[u32] {
        &self.slots
    }

    /// Sort the marked slots descending — the bottom-up processing order
    /// (children occupy higher slots than their parents).
    pub fn sort_descending(&mut self) {
        self.slots.sort_unstable_by(|a, b| b.cmp(a));
    }

    /// Number of marked slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when nothing is marked.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    /// The Fig. 1 tree: 0 -> 1, 1 -> {2, 5}, 2 -> {3, 4}.
    fn fig1() -> Tree {
        Tree::from_edges(
            n(0),
            &[(n(0), n(1)), (n(1), n(2)), (n(1), n(5)), (n(2), n(3)), (n(2), n(4))],
        )
        .unwrap()
    }

    #[test]
    fn structure_queries() {
        let t = fig1();
        assert_eq!(t.root(), n(0));
        assert_eq!(t.len(), 6);
        assert_eq!(t.parent(n(3)), Some(n(2)));
        assert_eq!(t.parent(n(0)), None);
        assert_eq!(t.children(n(1)), &[n(2), n(5)]);
        assert!(t.is_leaf(n(5)));
        assert!(!t.is_leaf(n(1)));
        assert!(t.contains(n(4)));
        assert!(!t.contains(n(9)));
    }

    #[test]
    fn bfs_orders_are_consistent() {
        let t = fig1();
        let down: Vec<NodeId> = t.top_down().collect();
        assert_eq!(down[0], n(0));
        // Every parent precedes its children.
        let pos: HashMap<NodeId, usize> = down.iter().enumerate().map(|(i, &x)| (x, i)).collect();
        for &node in &down {
            if let Some(p) = t.parent(node) {
                assert!(pos[&p] < pos[&node]);
            }
        }
        let up: Vec<NodeId> = t.bottom_up().collect();
        let mut rev = down.clone();
        rev.reverse();
        assert_eq!(up, rev);
    }

    #[test]
    fn leaves_and_subtrees() {
        let t = fig1();
        let leaves: Vec<NodeId> = t.leaves().collect();
        assert_eq!(leaves, vec![n(5), n(3), n(4)]);
        let mut sl = t.subtree_leaves(n(2));
        sl.sort();
        assert_eq!(sl, vec![n(3), n(4)]);
        let mut sub = t.subtree(n(1));
        sub.sort();
        assert_eq!(sub, vec![n(1), n(2), n(3), n(4), n(5)]);
    }

    #[test]
    fn depth_path_ancestor() {
        let t = fig1();
        assert_eq!(t.depth(n(0)), 0);
        assert_eq!(t.depth(n(4)), 3);
        assert_eq!(t.path_from_root(n(4)), vec![n(0), n(1), n(2), n(4)]);
        assert!(t.is_ancestor(n(1), n(4)));
        assert!(t.is_ancestor(n(4), n(4)));
        assert!(!t.is_ancestor(n(5), n(4)));
    }

    #[test]
    fn root_only_tree() {
        let t = Tree::from_edges(n(7), &[]).unwrap();
        assert_eq!(t.len(), 1);
        assert!(t.is_empty());
        assert_eq!(t.leaves().collect::<Vec<_>>(), vec![n(7)]);
        assert!(t.is_leaf(n(7)));
    }

    #[test]
    fn error_two_parents() {
        let e = Tree::from_edges(n(0), &[(n(0), n(1)), (n(0), n(2)), (n(2), n(1))]);
        assert_eq!(e.unwrap_err(), TreeError::TwoParents(n(1)));
    }

    #[test]
    fn error_root_has_parent() {
        let e = Tree::from_edges(n(0), &[(n(1), n(0))]);
        assert_eq!(e.unwrap_err(), TreeError::RootHasParent);
    }

    #[test]
    fn error_disconnected() {
        let e = Tree::from_edges(n(0), &[(n(0), n(1)), (n(5), n(6))]);
        assert_eq!(e.unwrap_err(), TreeError::Disconnected(n(6)));
    }

    #[test]
    fn lca_queries() {
        let t = fig1();
        assert_eq!(t.lca(n(3), n(4)), n(2));
        assert_eq!(t.lca(n(3), n(5)), n(1));
        assert_eq!(t.lca(n(0), n(4)), n(0));
        assert_eq!(t.lca(n(4), n(4)), n(4));
    }

    #[test]
    fn dot_rendering_contains_every_edge() {
        let t = fig1();
        let dot = t.to_dot(|n| format!("node{}", n.0));
        assert!(dot.starts_with("digraph tree {"));
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.contains("n2 -> n4;"));
        assert!(dot.contains("[label=\"node5\"]"));
        assert_eq!(dot.matches("->").count(), 5);
    }

    #[test]
    fn dense_slots_mirror_node_api() {
        let t = fig1();
        // Slot 0 is the root; node_at/slot_of round-trip.
        assert_eq!(t.node_at(0), t.root());
        for (s, node) in t.top_down().enumerate() {
            assert_eq!(t.slot_of(node), Some(s));
            assert_eq!(t.node_at(s), node);
            // Parent agreement.
            assert_eq!(t.parent_slot_of(s).map(|p| t.node_at(p)), t.parent(node));
            // CSR children are the same nodes in the same order.
            let via_slots: Vec<NodeId> = t.child_slots(s).map(|c| t.node_at(c)).collect();
            assert_eq!(via_slots.as_slice(), t.children(node));
            assert_eq!(t.is_leaf_slot(s), t.is_leaf(node));
        }
        assert_eq!(t.slot_of(n(9)), None);
        assert_eq!(t.slots().len(), t.len());
        let up: Vec<NodeId> = t.slots_bottom_up().map(|s| t.node_at(s)).collect();
        assert_eq!(up, t.bottom_up().collect::<Vec<_>>());
    }

    #[test]
    fn error_cycle_detected_as_disconnected() {
        let e = Tree::from_edges(n(0), &[(n(1), n(2)), (n(2), n(1))]);
        assert!(matches!(e.unwrap_err(), TreeError::TwoParents(_) | TreeError::Disconnected(_)));
    }

    #[test]
    fn structure_eq_detects_any_shape_change() {
        let t = fig1();
        assert!(t.structure_eq(&fig1()));
        assert!(t.structure_eq(&t.clone()));
        // Extra leaf under node 5.
        let grown = Tree::from_edges(
            n(0),
            &[(n(0), n(1)), (n(1), n(2)), (n(1), n(5)), (n(2), n(3)), (n(2), n(4)), (n(5), n(6))],
        )
        .unwrap();
        assert!(!t.structure_eq(&grown));
        // Same node set, node 4 re-parented under node 5: BFS order equal
        // but the CSR child index differs.
        let moved = Tree::from_edges(
            n(0),
            &[(n(0), n(1)), (n(1), n(2)), (n(1), n(5)), (n(2), n(3)), (n(5), n(4))],
        )
        .unwrap();
        assert!(!t.structure_eq(&moved));
        // Different root.
        let reroot = Tree::from_edges(n(1), &[(n(1), n(2))]).unwrap();
        assert!(!t.structure_eq(&reroot));
    }

    #[test]
    fn dirty_set_marks_and_resets_by_epoch() {
        let mut d = DirtySet::new();
        d.begin(6);
        assert!(d.is_empty());
        assert!(d.mark(3));
        assert!(!d.mark(3), "double mark is deduplicated");
        assert!(d.mark(5));
        assert!(d.contains(3) && d.contains(5) && !d.contains(0));
        assert_eq!(d.len(), 2);
        d.sort_descending();
        assert_eq!(d.slots(), &[5, 3]);
        // New round: previous marks are gone without clearing storage.
        d.begin(6);
        assert!(d.is_empty());
        assert!(!d.contains(3));
        assert!(d.mark(3));
        // Growing the tree re-zeroes the stamp array.
        d.begin(10);
        assert!(!d.contains(3));
        assert!(d.mark(9));
        assert!(!d.contains(6));
    }

    /// ISSUE 9 satellite: epoch wrap + shrink-then-regrow. `begin` never
    /// shrinks `stamp`, so slots past the current tree keep old stamps —
    /// none of those may ever read back as marked after the tree regrows,
    /// and the `u32::MAX` wrap must flush every stamp in the array
    /// (including the beyond-`len` tail a shrink left behind).
    #[test]
    fn dirty_set_epoch_wrap_and_shrink_regrow_leave_no_stale_marks() {
        let mut d = DirtySet::new();
        d.begin(8);
        for s in 0..8 {
            assert!(d.mark(s));
        }
        // Shrink to 3 slots: the stamp array keeps length 8, so slots 3..8
        // still carry the previous round's epoch.
        d.begin(3);
        assert!(d.is_empty());
        assert!(d.mark(1));
        // Regrow to 8 without an epoch wrap: the kept tail must stay clean.
        d.begin(8);
        for s in 0..8 {
            assert!(!d.contains(s), "stale mark survived shrink-then-regrow at slot {s}");
        }
        assert!(d.mark(5));
        // Drive the counter to the wrap point with marks outstanding in
        // both the live range and the stale tail, then shrink and wrap.
        d.epoch = u32::MAX - 1;
        d.slots.clear();
        d.begin(8); // epoch -> u32::MAX: every stamp slot now matches it
        for s in 0..8 {
            assert!(d.mark(s));
        }
        d.begin(3); // wrap: re-zero + epoch = 1
        assert!(d.is_empty());
        for s in 0..3 {
            assert!(!d.contains(s), "stale mark survived the epoch wrap at slot {s}");
        }
        assert_eq!(d.epoch, 1, "wrap must restart the epoch counter");
        // And the regrow after the wrap is clean too.
        d.begin(8);
        for s in 0..8 {
            assert!(!d.contains(s), "stale mark survived wrap-then-regrow at slot {s}");
        }
        assert!(d.mark(2) && !d.mark(2));
    }

    #[test]
    fn mark_ancestors_walks_to_root_and_stops_at_marked() {
        let t = fig1();
        // fig1 BFS order: 0,1,2,5,3,4 -> slot of node 4 is 5, node 3 is 4.
        let s4 = t.slot_of(n(4)).unwrap();
        let s3 = t.slot_of(n(3)).unwrap();
        let mut d = DirtySet::new();
        d.begin(t.len());
        t.mark_ancestors(s4, &mut d);
        // Path 4 -> 2 -> 1 -> 0.
        let mut got: Vec<u32> = d.slots().to_vec();
        got.sort_unstable();
        let mut want: Vec<u32> =
            [n(4), n(2), n(1), n(0)].iter().map(|&x| t.slot_of(x).unwrap() as u32).collect();
        want.sort_unstable();
        assert_eq!(got, want);
        // Second walk from the sibling stops at the shared parent: only the
        // sibling itself is newly marked.
        let before = d.len();
        t.mark_ancestors(s3, &mut d);
        assert_eq!(d.len(), before + 1);
        assert!(d.contains(s3));
    }

    #[test]
    fn mark_subtree_covers_descendants_even_through_marked_slots() {
        let t = fig1();
        let s1 = t.slot_of(n(1)).unwrap();
        let s2 = t.slot_of(n(2)).unwrap();
        let mut d = DirtySet::new();
        d.begin(t.len());
        // Pre-mark an interior slot of the subtree (as an ancestor walk
        // would); the subtree DFS must still reach its children.
        assert!(d.mark(s2));
        t.mark_subtree(s1, &mut d);
        for node in [n(1), n(2), n(5), n(3), n(4)] {
            assert!(d.contains(t.slot_of(node).unwrap()), "node {} missing", node.0);
        }
        assert!(!d.contains(t.slot_of(n(0)).unwrap()));
    }
}
