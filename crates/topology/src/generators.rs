//! Topology generators: the paper's evaluation topologies plus generic
//! shapes for tests and stress runs.
//!
//! Capacities for the named topologies follow the paper's layered-source
//! arithmetic: 6 layers, base 32 kb/s, doubling per layer, so the cumulative
//! subscription rates are 32 / 96 / 224 / 480 / 992 / 2016 kb/s.

use crate::spec::{NodeRole, TopoSpec};
use netsim::{LinkConfig, RngStream, SimDuration};

/// Paper default: 200 ms latency on every link.
const LATENCY: SimDuration = SimDuration(200 * 1_000_000);

/// A fat link that is never the bottleneck.
fn fat() -> LinkConfig {
    LinkConfig::kbps(100_000.0).with_delay(LATENCY)
}

/// A constrained link with the default drop-tail queue.
fn thin(kbps: f64) -> LinkConfig {
    LinkConfig::kbps(kbps).with_delay(LATENCY)
}

/// **Topology A** (Fig. 5, left): one session, two sets of receivers behind
/// different bottlenecks.
///
/// ```text
///          src(+controller)
///               |
///              core
///             /    \
///   [cap_a kbps]  [cap_b kbps]      <- the two bottlenecks
///           lanA    lanB
///          / | \    / | \
///        receivers  receivers       <- n per set, fat last hops
/// ```
///
/// With the defaults (`cap_a = 150`, `cap_b = 600`) the optimal subscription
/// is 2 layers (96 kb/s) for set A and 4 layers (480 kb/s) for set B.
pub fn topology_a(receivers_per_set: usize, cap_a_kbps: f64, cap_b_kbps: f64) -> TopoSpec {
    assert!(receivers_per_set >= 1);
    let mut s = TopoSpec::new(format!("topology-a/{receivers_per_set}"));
    let src = s.node("src", vec![NodeRole::Source { session: 0 }, NodeRole::Controller]);
    let core = s.node("core", vec![NodeRole::Router]);
    s.link(src, core, fat());
    for (set, cap) in [(0u32, cap_a_kbps), (1u32, cap_b_kbps)] {
        let lan = s.node(format!("lan{set}"), vec![NodeRole::Router]);
        s.link(core, lan, thin(cap));
        for r in 0..receivers_per_set {
            let rcv = s.node(format!("rcv{set}.{r}"), vec![NodeRole::Receiver { session: 0, set }]);
            s.link(lan, rcv, fat());
        }
    }
    s
}

/// Topology A with the capacities used throughout the evaluation.
pub fn topology_a_default(receivers_per_set: usize) -> TopoSpec {
    topology_a(receivers_per_set, 150.0, 600.0)
}

/// **Topology B** (Fig. 5, right): `n` single-receiver sessions sharing one
/// bottleneck link whose capacity scales as `per_session_kbps * n`, so each
/// session can ideally receive 4 layers (480 kb/s) at the paper's
/// `per_session_kbps = 500`.
///
/// ```text
///   s0 s1 .. s(n-1)
///     \ | | /
///       agg  ==[n * per_session_kbps]==  dist
///                                       / | \
///                                     r0 r1 .. r(n-1)
/// ```
///
/// The controller sits on session 0's source node, so its suggestions cross
/// the shared link and can be lost under congestion, as in the paper.
pub fn topology_b(n_sessions: usize, per_session_kbps: f64) -> TopoSpec {
    assert!(n_sessions >= 1);
    let mut s = TopoSpec::new(format!("topology-b/{n_sessions}"));
    let agg = s.node("agg", vec![NodeRole::Router]);
    let dist = s.node("dist", vec![NodeRole::Router]);
    s.link(agg, dist, thin(per_session_kbps * n_sessions as f64));
    for i in 0..n_sessions {
        let roles = if i == 0 {
            vec![NodeRole::Source { session: 0 }, NodeRole::Controller]
        } else {
            vec![NodeRole::Source { session: i as u32 }]
        };
        let src = s.node(format!("s{i}"), roles);
        s.link(src, agg, fat());
        let rcv = s.node(format!("r{i}"), vec![NodeRole::Receiver { session: i as u32, set: 0 }]);
        s.link(dist, rcv, fat());
    }
    s
}

/// Topology B with the paper's 500 kb/s fair share per session.
pub fn topology_b_default(n_sessions: usize) -> TopoSpec {
    topology_b(n_sessions, 500.0)
}

/// The **Fig. 1** motivating example: a receiver at node 4 that greedily
/// adds a third layer congests the shared link into node 2 and causes loss
/// for the slower sibling at node 3.
///
/// ```text
///   src -- n1 -- n2 -- n3   (2->3: 40 kb/s,  optimal 1 layer)
///           |     \
///           |      n4       (2->4: 120 kb/s, optimal 2 layers)
///           n5              (1->5: fat,      optimal capped by 1->2? no:
///                            separate subtree, optimal 4+ layers)
/// ```
///
/// The link 1 -> 2 carries 110 kb/s, which fits layers {1,2} (96 kb/s) but
/// not layer 3 (224 kb/s cumulative): over-subscription at node 4 therefore
/// hurts node 3 as well, which is the paper's motivating observation.
pub fn figure1() -> TopoSpec {
    let mut s = TopoSpec::new("figure1");
    let src = s.node("src", vec![NodeRole::Source { session: 0 }, NodeRole::Controller]);
    let n1 = s.node("n1", vec![NodeRole::Router]);
    let n2 = s.node("n2", vec![NodeRole::Router]);
    let n3 = s.node("n3", vec![NodeRole::Receiver { session: 0, set: 0 }]);
    let n4 = s.node("n4", vec![NodeRole::Receiver { session: 0, set: 1 }]);
    let n5 = s.node("n5", vec![NodeRole::Receiver { session: 0, set: 2 }]);
    s.link(src, n1, fat());
    s.link(n1, n2, thin(110.0));
    s.link(n2, n3, thin(40.0));
    s.link(n2, n4, thin(120.0));
    s.link(n1, n5, thin(600.0));
    s
}

/// Parameters for a random tiered (Fig. 2-style) topology.
#[derive(Clone, Copy, Debug)]
pub struct TieredParams {
    /// Number of tiers below the source (≥ 1).
    pub tiers: usize,
    /// Fan-out range per router, inclusive.
    pub fanout: (u64, u64),
    /// Capacity of tier-1 links in kb/s; each deeper tier divides by
    /// `capacity_decay`.
    pub top_kbps: f64,
    /// Per-tier capacity division factor (> 1 puts bottlenecks at the edge —
    /// the paper's "last mile problem").
    pub capacity_decay: f64,
}

impl Default for TieredParams {
    fn default() -> Self {
        TieredParams { tiers: 3, fanout: (2, 3), top_kbps: 8000.0, capacity_decay: 4.0 }
    }
}

/// A random tiered tree for one session: national -> regional -> local ->
/// institutional ISPs, capacities decaying toward the leaves. Receivers sit
/// at every leaf of the last tier.
pub fn tiered(rng: &mut RngStream, p: TieredParams) -> TopoSpec {
    assert!(p.tiers >= 1);
    let mut s = TopoSpec::new("tiered");
    let src = s.node("src", vec![NodeRole::Source { session: 0 }, NodeRole::Controller]);
    let mut frontier = vec![src];
    let mut kbps = p.top_kbps;
    for tier in 0..p.tiers {
        let mut next = Vec::new();
        let last = tier + 1 == p.tiers;
        for (pi, &parent) in frontier.iter().enumerate() {
            let fan = rng.range_u64(p.fanout.0, p.fanout.1 + 1) as usize;
            for c in 0..fan {
                let roles = if last {
                    vec![NodeRole::Receiver { session: 0, set: tier as u32 }]
                } else {
                    vec![NodeRole::Router]
                };
                let node = s.node(format!("t{tier}.{pi}.{c}"), roles);
                // Jitter capacities ±25% so sibling subtrees differ.
                let jitter = rng.range_f64(0.75, 1.25);
                s.link(parent, node, thin(kbps * jitter));
                next.push(node);
            }
        }
        frontier = next;
        kbps /= p.capacity_decay;
    }
    s
}

/// A random tiered tree shared by `n_sessions` co-located sources: leaf
/// receivers are assigned to sessions round-robin, so sessions interleave
/// across the whole tree and every interior link is *shared* — the
/// stress case for the capacity estimator and the fair-share stage.
pub fn tiered_multisession(rng: &mut RngStream, p: TieredParams, n_sessions: usize) -> TopoSpec {
    assert!(n_sessions >= 1);
    let mut s = tiered(rng, p);
    // Re-role: the single source node hosts every session's source; leaf
    // receivers rotate through the sessions.
    let mut roles = vec![NodeRole::Controller];
    for sess in 0..n_sessions as u32 {
        roles.push(NodeRole::Source { session: sess });
    }
    s.nodes[0].roles = roles;
    let mut next = 0u32;
    for node in s.nodes.iter_mut().skip(1) {
        for role in node.roles.iter_mut() {
            if let NodeRole::Receiver { session, .. } = role {
                *session = next % n_sessions as u32;
                next += 1;
            }
        }
    }
    s.name = format!("tiered-multi/{n_sessions}");
    s
}

/// A chain `src - r1 - … - r(n-1) - rcv` with uniform capacity; for unit and
/// property tests.
pub fn chain(hops: usize, kbps: f64) -> TopoSpec {
    assert!(hops >= 1);
    let mut s = TopoSpec::new(format!("chain/{hops}"));
    let src = s.node("src", vec![NodeRole::Source { session: 0 }, NodeRole::Controller]);
    let mut prev = src;
    for h in 0..hops {
        let roles = if h + 1 == hops {
            vec![NodeRole::Receiver { session: 0, set: 0 }]
        } else {
            vec![NodeRole::Router]
        };
        let node = s.node(format!("h{h}"), roles);
        s.link(prev, node, thin(kbps));
        prev = node;
    }
    s
}

/// A star: source in the middle, `n` receivers on individually-capped legs.
pub fn star(legs: &[f64]) -> TopoSpec {
    assert!(!legs.is_empty());
    let mut s = TopoSpec::new(format!("star/{}", legs.len()));
    let src = s.node("src", vec![NodeRole::Source { session: 0 }, NodeRole::Controller]);
    for (i, &kbps) in legs.iter().enumerate() {
        let rcv = s.node(format!("r{i}"), vec![NodeRole::Receiver { session: 0, set: i as u32 }]);
        s.link(src, rcv, thin(kbps));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_a_shape() {
        let s = topology_a_default(3);
        // src + core + 2 lans + 6 receivers.
        assert_eq!(s.nodes.len(), 10);
        assert_eq!(s.links.len(), 9);
        assert_eq!(s.receivers().len(), 6);
        assert_eq!(s.sources().len(), 1);
        assert_eq!(s.controller(), 0);
        // Both sets present.
        let sets: Vec<u32> = s.receivers().iter().map(|&(_, (_, set))| set).collect();
        assert_eq!(sets.iter().filter(|&&x| x == 0).count(), 3);
        assert_eq!(sets.iter().filter(|&&x| x == 1).count(), 3);
    }

    #[test]
    fn topology_b_shared_link_scales() {
        let s = topology_b_default(4);
        assert_eq!(s.session_count(), 4);
        assert_eq!(s.receivers().len(), 4);
        // Shared link (spec link 0) capacity = 4 * 500 kb/s.
        assert_eq!(s.links[0].config.bandwidth_bps, 2_000_000.0);
        // Controller rides on source 0.
        let ctrl = s.controller();
        assert!(s.sources().iter().any(|&(i, sess)| i == ctrl && sess == 0));
    }

    #[test]
    fn figure1_capacities_tell_the_story() {
        let s = figure1();
        // 1 -> 2 fits two layers (96) but not three (224).
        let c12 = s.capacity_between(1, 2).unwrap();
        assert!(c12 > 96_000.0 && c12 < 224_000.0);
        let c23 = s.capacity_between(2, 3).unwrap();
        assert!(c23 > 32_000.0 && c23 < 96_000.0);
    }

    #[test]
    fn tiered_is_buildable_and_decays() {
        let mut rng = RngStream::derive(11, "tiered-test");
        let p = TieredParams::default();
        let s = tiered(&mut rng, p);
        assert!(s.receivers().len() >= 4, "at least 2^2 leaves");
        let built = s.instantiate(Default::default());
        assert_eq!(built.sim.network().node_count(), s.nodes.len());
        // Last-tier links are slower than first-tier links.
        let first = s.links.first().unwrap().config.bandwidth_bps;
        let last = s.links.last().unwrap().config.bandwidth_bps;
        assert!(last < first / 4.0);
    }

    #[test]
    fn tiered_is_deterministic_per_seed() {
        let gen = |seed| {
            let mut rng = RngStream::derive(seed, "tiered-test");
            tiered(&mut rng, TieredParams::default()).nodes.len()
        };
        assert_eq!(gen(5), gen(5));
    }

    #[test]
    fn tiered_multisession_interleaves_sessions() {
        let mut rng = RngStream::derive(3, "tiered-ms");
        let s = tiered_multisession(&mut rng, TieredParams::default(), 3);
        assert_eq!(s.session_count(), 3);
        let sessions: Vec<u32> = s.receivers().iter().map(|&(_, (sess, _))| sess).collect();
        // Every session has at least one receiver (enough leaves exist).
        for sess in 0..3 {
            assert!(sessions.contains(&sess), "session {sess} unassigned: {sessions:?}");
        }
        // All sources are co-located with the controller at the root node.
        assert!(s.sources().iter().all(|&(node, _)| node == 0));
        assert_eq!(s.controller(), 0);
    }

    #[test]
    fn chain_and_star() {
        let c = chain(4, 100.0);
        assert_eq!(c.nodes.len(), 5);
        assert_eq!(c.receivers().len(), 1);
        let st = star(&[100.0, 200.0, 300.0]);
        assert_eq!(st.receivers().len(), 3);
        assert_eq!(st.links.len(), 3);
    }
}
