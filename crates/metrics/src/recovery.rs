//! Fault-recovery metrics for the chaos scenarios (DESIGN.md §9).
//!
//! After the last fault heals, a surviving receiver should climb back to
//! its oracle level. These helpers measure how long that takes, in wall
//! time and in controller intervals.

use crate::step::StepSeries;
use netsim::{SimDuration, SimTime};

/// How long after `heal_at` the level series takes to first return to
/// within `tolerance` of `target` (before `horizon`).
///
/// This is deliberately a *first-return* measure, not a settling measure:
/// the controller's steady state legitimately oscillates around the
/// optimum (probe a layer up, back off on loss), so demanding the series
/// hold the target forever would never be satisfied. Returns `None` when
/// the series never touches the band, and `Some(ZERO)` when it was already
/// inside it at `heal_at`.
pub fn recovery_time(
    series: &StepSeries,
    heal_at: SimTime,
    target: f64,
    tolerance: f64,
    horizon: SimTime,
) -> Option<SimDuration> {
    let ok_at = |t: SimTime| (series.value_at(t) as f64 - target).abs() <= tolerance;
    if ok_at(heal_at) {
        return Some(SimDuration::ZERO);
    }
    series
        .points()
        .map(|(t, _)| t)
        .filter(|&t| t > heal_at && t < horizon)
        .find(|&t| ok_at(t))
        .map(|t| t.since(heal_at))
}

/// The recovery time expressed in (rounded-up) controller intervals — the
/// unit the acceptance bound "within N control intervals of healing" uses.
pub fn intervals_to_recover(recovery: SimDuration, interval: SimDuration) -> u64 {
    assert!(interval > SimDuration::ZERO);
    recovery.0.div_ceil(interval.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn already_recovered_at_heal_is_zero() {
        let mut s = StepSeries::new();
        s.push(t(1), 4);
        let rt = recovery_time(&s, t(10), 4.0, 0.5, t(60)).unwrap();
        assert_eq!(rt, SimDuration::ZERO);
    }

    #[test]
    fn recovery_waits_for_the_climb_back() {
        // Dropped to 1 during the fault, climbs 2 -> 3 -> 4 after healing.
        let mut s = StepSeries::new();
        s.push(t(0), 4);
        s.push(t(10), 1);
        s.push(t(22), 2);
        s.push(t(24), 3);
        s.push(t(26), 4);
        let rt = recovery_time(&s, t(20), 4.0, 0.5, t(60)).unwrap();
        assert_eq!(rt, SimDuration::from_secs(6));
    }

    #[test]
    fn first_return_counts_even_with_a_later_relapse() {
        // Touches the target at 22; the later dip at 30 is steady-state
        // probing, not a recovery failure.
        let mut s = StepSeries::new();
        s.push(t(22), 4);
        s.push(t(30), 2);
        s.push(t(35), 4);
        let rt = recovery_time(&s, t(20), 4.0, 0.5, t(60)).unwrap();
        assert_eq!(rt, SimDuration::from_secs(2));
    }

    #[test]
    fn never_recovering_is_none() {
        let mut s = StepSeries::new();
        s.push(t(5), 1);
        assert_eq!(recovery_time(&s, t(20), 4.0, 0.5, t(60)), None);
    }

    #[test]
    fn interval_rounding_is_ceiling() {
        let iv = SimDuration::from_secs(2);
        assert_eq!(intervals_to_recover(SimDuration::ZERO, iv), 0);
        assert_eq!(intervals_to_recover(SimDuration::from_secs(6), iv), 3);
        assert_eq!(intervals_to_recover(SimDuration::from_millis(6_100), iv), 4);
    }

    #[test]
    fn empty_series_recovers_only_if_zero_is_the_target() {
        // A run with no fault events produces an empty change series; the
        // metric must answer, not panic.
        let s = StepSeries::new();
        assert_eq!(recovery_time(&s, t(20), 4.0, 0.5, t(60)), None);
        // An empty series reads as level 0, which *is* a zero target.
        assert_eq!(recovery_time(&s, t(20), 0.0, 0.5, t(60)), Some(SimDuration::ZERO));
    }

    #[test]
    fn change_exactly_at_heal_does_not_count_as_post_heal() {
        // The climb lands at the very instant of healing: ok_at(heal_at)
        // already sees it, so this is an immediate (zero) recovery, not a
        // 0-second-later first return.
        let mut s = StepSeries::new();
        s.push(t(5), 1);
        s.push(t(20), 4);
        assert_eq!(recovery_time(&s, t(20), 4.0, 0.5, t(60)), Some(SimDuration::ZERO));
    }

    #[test]
    fn recovery_exactly_at_the_horizon_is_too_late() {
        // The window is half-open [heal, horizon): touching the band at
        // the horizon itself does not count...
        let mut s = StepSeries::new();
        s.push(t(5), 1);
        s.push(t(60), 4);
        assert_eq!(recovery_time(&s, t(20), 4.0, 0.5, t(60)), None);
        // ...but one step earlier does — no off-by-one at the bound.
        let mut s = StepSeries::new();
        s.push(t(5), 1);
        s.push(t(59), 4);
        assert_eq!(recovery_time(&s, t(20), 4.0, 0.5, t(60)), Some(SimDuration::from_secs(39)));
    }

    #[test]
    fn never_healing_within_a_tight_tolerance_is_none() {
        // The series hovers one level below target with a tolerance too
        // tight to bridge: never recovered, even though it moved.
        let mut s = StepSeries::new();
        s.push(t(5), 1);
        s.push(t(25), 3);
        s.push(t(40), 3);
        assert_eq!(recovery_time(&s, t(20), 4.0, 0.5, t(60)), None);
    }

    #[test]
    fn exact_interval_multiples_do_not_round_up() {
        let iv = SimDuration::from_secs(2);
        assert_eq!(intervals_to_recover(SimDuration::from_secs(4), iv), 2);
        assert_eq!(intervals_to_recover(SimDuration(1), iv), 1);
    }
}
