//! Inter-session fairness helpers (Fig. 8 support).

/// Jain's fairness index: `(Σx)² / (n · Σx²)`. 1.0 = perfectly fair;
/// `1/n` = one party takes everything.
pub fn jain_index(shares: &[f64]) -> f64 {
    assert!(!shares.is_empty());
    assert!(shares.iter().all(|&x| x >= 0.0), "shares must be non-negative");
    let sum: f64 = shares.iter().sum();
    if sum == 0.0 {
        return 1.0; // all equal (at zero)
    }
    let sq: f64 = shares.iter().map(|&x| x * x).sum();
    sum * sum / (shares.len() as f64 * sq)
}

/// Each party's fraction of the total.
pub fn normalized_shares(values: &[f64]) -> Vec<f64> {
    let total: f64 = values.iter().sum();
    if total == 0.0 {
        return vec![0.0; values.len()];
    }
    values.iter().map(|&v| v / total).collect()
}

/// Max/min ratio of the shares (∞ when someone is starved while another
/// party gets traffic).
///
/// Total on every input: an empty or all-zero vector means nobody is
/// being favored over anybody, so the ratio is 1.0 (perfectly even), and
/// a single-element vector is likewise trivially even. The previous
/// version divided straight through and reported ∞ for `[0.0, 0.0]` and
/// `[0.0]` — an all-idle session set is not a starvation event, and the
/// campaign fairness gates depend on the distinction. NaN shares are
/// rejected (they would poison the fold silently).
pub fn max_min_ratio(shares: &[f64]) -> f64 {
    assert!(shares.iter().all(|x| !x.is_nan()), "NaN share");
    assert!(shares.iter().all(|&x| x >= 0.0), "shares must be non-negative");
    let max = shares.iter().copied().fold(0.0f64, f64::max);
    if shares.len() <= 1 || max == 0.0 {
        return 1.0;
    }
    let min = shares.iter().copied().fold(f64::INFINITY, f64::min);
    if min == 0.0 {
        f64::INFINITY
    } else {
        max / min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_equal_shares_is_one() {
        assert!((jain_index(&[5.0, 5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jain_single_hog_is_one_over_n() {
        let j = jain_index(&[10.0, 0.0, 0.0, 0.0]);
        assert!((j - 0.25).abs() < 1e-12);
    }

    #[test]
    fn jain_intermediate() {
        let j = jain_index(&[4.0, 2.0]);
        // (6)^2 / (2 * 20) = 36/40 = 0.9.
        assert!((j - 0.9).abs() < 1e-12);
    }

    #[test]
    fn jain_all_zero_is_fair() {
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn normalized() {
        assert_eq!(normalized_shares(&[1.0, 3.0]), vec![0.25, 0.75]);
        assert_eq!(normalized_shares(&[0.0, 0.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn ratio() {
        assert!((max_min_ratio(&[4.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(max_min_ratio(&[1.0, 0.0]), f64::INFINITY);
    }

    #[test]
    fn ratio_all_zero_is_even() {
        // Regression: an all-idle share vector used to read as starvation
        // (∞); nobody is favored, so the ratio is 1.
        assert_eq!(max_min_ratio(&[0.0, 0.0, 0.0]), 1.0);
        assert_eq!(max_min_ratio(&[0.0]), 1.0);
    }

    #[test]
    fn ratio_single_and_empty_are_even() {
        assert_eq!(max_min_ratio(&[7.5]), 1.0);
        assert_eq!(max_min_ratio(&[]), 1.0);
    }

    #[test]
    #[should_panic(expected = "NaN share")]
    fn ratio_rejects_nan() {
        let _ = max_min_ratio(&[1.0, f64::NAN]);
    }

    #[test]
    #[should_panic]
    fn ratio_rejects_negative() {
        let _ = max_min_ratio(&[1.0, -2.0]);
    }

    #[test]
    #[should_panic]
    fn negative_share_panics() {
        let _ = jain_index(&[1.0, -1.0]);
    }
}
