//! Inter-session fairness helpers (Fig. 8 support).

/// Jain's fairness index: `(Σx)² / (n · Σx²)`. 1.0 = perfectly fair;
/// `1/n` = one party takes everything.
pub fn jain_index(shares: &[f64]) -> f64 {
    assert!(!shares.is_empty());
    assert!(shares.iter().all(|&x| x >= 0.0), "shares must be non-negative");
    let sum: f64 = shares.iter().sum();
    if sum == 0.0 {
        return 1.0; // all equal (at zero)
    }
    let sq: f64 = shares.iter().map(|&x| x * x).sum();
    sum * sum / (shares.len() as f64 * sq)
}

/// Each party's fraction of the total.
pub fn normalized_shares(values: &[f64]) -> Vec<f64> {
    let total: f64 = values.iter().sum();
    if total == 0.0 {
        return vec![0.0; values.len()];
    }
    values.iter().map(|&v| v / total).collect()
}

/// Max/min ratio of the shares (∞ when someone is starved).
pub fn max_min_ratio(shares: &[f64]) -> f64 {
    assert!(!shares.is_empty());
    let max = shares.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min = shares.iter().copied().fold(f64::INFINITY, f64::min);
    if min == 0.0 {
        f64::INFINITY
    } else {
        max / min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_equal_shares_is_one() {
        assert!((jain_index(&[5.0, 5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jain_single_hog_is_one_over_n() {
        let j = jain_index(&[10.0, 0.0, 0.0, 0.0]);
        assert!((j - 0.25).abs() < 1e-12);
    }

    #[test]
    fn jain_intermediate() {
        let j = jain_index(&[4.0, 2.0]);
        // (6)^2 / (2 * 20) = 36/40 = 0.9.
        assert!((j - 0.9).abs() < 1e-12);
    }

    #[test]
    fn jain_all_zero_is_fair() {
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn normalized() {
        assert_eq!(normalized_shares(&[1.0, 3.0]), vec![0.25, 0.75]);
        assert_eq!(normalized_shares(&[0.0, 0.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn ratio() {
        assert!((max_min_ratio(&[4.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(max_min_ratio(&[1.0, 0.0]), f64::INFINITY);
    }

    #[test]
    #[should_panic]
    fn negative_share_panics() {
        let _ = jain_index(&[1.0, -1.0]);
    }
}
