//! Descriptive statistics for experiment tables.

/// Mean/std/min/max of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    pub n: usize,
    pub mean: f64,
    pub std: f64,
    pub min: f64,
    pub max: f64,
}

impl Summary {
    /// Compute over a sample. Panics on an empty slice.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "summary of empty sample");
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        Summary {
            n,
            mean,
            std: var.sqrt(),
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mean={:.4} std={:.4} min={:.4} max={:.4} (n={})",
            self.mean, self.std, self.min, self.max, self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stats() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        // Population std of 1..4 = sqrt(1.25).
        assert!((s.std - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn single_value() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std, 0.0);
    }

    #[test]
    #[should_panic]
    fn empty_panics() {
        let _ = Summary::of(&[]);
    }

    #[test]
    fn display_is_stable() {
        let s = Summary::of(&[1.0, 1.0]);
        assert_eq!(format!("{s}"), "mean=1.0000 std=0.0000 min=1.0000 max=1.0000 (n=2)");
    }
}
