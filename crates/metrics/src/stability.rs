//! Stability metrics (Figs. 6–7).
//!
//! The paper "counted the number of times layers were added or dropped by
//! each receiver over the period of 1200 seconds" and plots, per scenario,
//! the **maximum** change count over receivers plus the **mean time elapsed
//! between successive changes** for that receiver.

use crate::step::StepSeries;
use netsim::SimTime;

/// Number of subscription changes in `[start, end)`, excluding the initial
/// join at or before `start` (joining the base layer is not a "change").
pub fn change_count(series: &StepSeries, start: SimTime, end: SimTime) -> usize {
    series.changes_in(start, end)
}

/// Mean time between successive changes within `[start, end)`.
///
/// With fewer than two changes there is no gap to average; the window
/// length is returned (the subscription was stable for the whole window).
pub fn mean_time_between_changes(series: &StepSeries, start: SimTime, end: SimTime) -> f64 {
    let times: Vec<SimTime> =
        series.points().map(|(t, _)| t).filter(|&t| t >= start && t < end).collect();
    if times.len() < 2 {
        return end.since(start).as_secs_f64();
    }
    let total = times.last().unwrap().since(times[0]).as_secs_f64();
    total / (times.len() - 1) as f64
}

/// The worst (max-change) receiver of a set: returns
/// `(max change count, mean time between changes of that receiver)`, the
/// pair each point of Figs. 6–7 reports.
pub fn worst_receiver(series: &[&StepSeries], start: SimTime, end: SimTime) -> (usize, f64) {
    assert!(!series.is_empty());
    let (idx, count) = series
        .iter()
        .enumerate()
        .map(|(i, s)| (i, change_count(s, start, end)))
        .max_by_key(|&(_, c)| c)
        .expect("non-empty");
    (count, mean_time_between_changes(series[idx], start, end))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn series(times: &[u64]) -> StepSeries {
        let mut s = StepSeries::new();
        for (i, &ts) in times.iter().enumerate() {
            s.push(t(ts), (i % 4) as u8 + 1);
        }
        s
    }

    #[test]
    fn counting_excludes_outside_window() {
        let s = series(&[0, 10, 20, 500]);
        assert_eq!(change_count(&s, t(1), t(100)), 2);
        assert_eq!(change_count(&s, t(0), t(1000)), 4);
    }

    #[test]
    fn mean_gap() {
        let s = series(&[10, 20, 40]);
        // Gaps 10 and 20 -> mean 15.
        assert!((mean_time_between_changes(&s, t(0), t(100)) - 15.0).abs() < 1e-12);
    }

    #[test]
    fn stable_receiver_reports_window_length() {
        let s = series(&[5]);
        assert_eq!(mean_time_between_changes(&s, t(0), t(1200)), 1200.0);
        let empty = StepSeries::new();
        assert_eq!(mean_time_between_changes(&empty, t(0), t(600)), 600.0);
    }

    #[test]
    fn worst_receiver_is_max_count() {
        let a = series(&[10]);
        let b = series(&[10, 20, 30, 40]);
        let (count, gap) = worst_receiver(&[&a, &b], t(0), t(100));
        assert_eq!(count, 4);
        assert!((gap - 10.0).abs() < 1e-12);
    }
}
