//! # metrics — the paper's evaluation metrics
//!
//! * [`step::StepSeries`] — piecewise-constant subscription-level series
//!   built from a receiver's change log.
//! * [`deviation`] — the paper's **relative deviation** metric:
//!   `Σ_Δt |x_i(Δt) − y_i| · ‖Δt‖  /  Σ_Δt y_i · ‖Δt‖`.
//! * [`stability`] — subscription-change counts and mean time between
//!   changes (Figs. 6–7).
//! * [`fairness`] — Jain's index and per-session shares (Fig. 8 support).
//! * [`summary`] — small descriptive-statistics helpers.
//! * [`timeseries`] — windowed stats, EWMA, and convergence-time
//!   extraction for the ablation studies.
//! * [`recovery`] — post-fault recovery time (wall clock and controller
//!   intervals) for the chaos scenarios.

pub mod deviation;
pub mod fairness;
pub mod recovery;
pub mod stability;
pub mod step;
pub mod summary;
pub mod timeseries;

pub use deviation::{mean_relative_deviation, relative_deviation};
pub use fairness::{jain_index, max_min_ratio};
pub use recovery::{intervals_to_recover, recovery_time};
pub use stability::{change_count, mean_time_between_changes};
pub use step::StepSeries;
pub use summary::Summary;
pub use timeseries::{convergence_time, ewma, window_mean};
