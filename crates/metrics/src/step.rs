//! Piecewise-constant level series.
//!
//! A receiver's subscription over time is a step function: it holds a level
//! until a change event. [`StepSeries`] stores the change points and answers
//! time-weighted queries over arbitrary windows, which is exactly what the
//! paper's relative-deviation metric integrates.

use netsim::SimTime;

/// A piecewise-constant `u8` level over time.
///
/// The value before the first change point is 0 (unsubscribed).
///
/// ```
/// use metrics::StepSeries;
/// use netsim::SimTime;
/// let mut s = StepSeries::new();
/// s.push(SimTime::from_secs(10), 2);
/// s.push(SimTime::from_secs(20), 4);
/// assert_eq!(s.value_at(SimTime::from_secs(15)), 2);
/// // Time-weighted mean over [10, 30]: 2 for 10 s, 4 for 10 s.
/// assert_eq!(s.mean(SimTime::from_secs(10), SimTime::from_secs(30)), 3.0);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StepSeries {
    /// `(time, value from that time on)`, strictly increasing in time.
    points: Vec<(SimTime, u8)>,
}

impl StepSeries {
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from a change log of `(time, old, new)` entries in time order
    /// (the format receivers record).
    pub fn from_changes(changes: &[(SimTime, u8, u8)]) -> Self {
        let mut s = StepSeries::new();
        for &(t, _, new) in changes {
            s.push(t, new);
        }
        s
    }

    /// Append a change point. Times must be non-decreasing; a same-time
    /// push overwrites the previous value.
    pub fn push(&mut self, time: SimTime, value: u8) {
        if let Some(last) = self.points.last_mut() {
            assert!(time >= last.0, "change points must be in time order");
            if last.0 == time {
                last.1 = value;
                return;
            }
        }
        self.points.push((time, value));
    }

    /// The value at time `t`.
    pub fn value_at(&self, t: SimTime) -> u8 {
        match self.points.partition_point(|&(pt, _)| pt <= t) {
            0 => 0,
            i => self.points[i - 1].1,
        }
    }

    /// Number of change points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no change points are recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Change points within `[start, end)`.
    pub fn changes_in(&self, start: SimTime, end: SimTime) -> usize {
        self.points.iter().filter(|&&(t, _)| t >= start && t < end).count()
    }

    /// Integrate `f(value)` over `[start, end]`, weighted by the time each
    /// value is held.
    pub fn integrate(&self, start: SimTime, end: SimTime, mut f: impl FnMut(u8) -> f64) -> f64 {
        assert!(end >= start);
        let mut acc = 0.0;
        let mut t = start;
        let mut v = self.value_at(start);
        for &(pt, pv) in self.points.iter().filter(|&&(pt, _)| pt > start && pt < end) {
            acc += f(v) * pt.since(t).as_secs_f64();
            t = pt;
            v = pv;
        }
        acc += f(v) * end.since(t).as_secs_f64();
        acc
    }

    /// Time-weighted mean value over `[start, end]`.
    pub fn mean(&self, start: SimTime, end: SimTime) -> f64 {
        let dur = end.since(start).as_secs_f64();
        if dur == 0.0 {
            return self.value_at(start) as f64;
        }
        self.integrate(start, end, |v| v as f64) / dur
    }

    /// Iterate over the raw change points.
    pub fn points(&self) -> impl Iterator<Item = (SimTime, u8)> + '_ {
        self.points.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn series() -> StepSeries {
        // 0 until t=10, then 2 until t=20, then 4 until t=30, then 1.
        let mut s = StepSeries::new();
        s.push(t(10), 2);
        s.push(t(20), 4);
        s.push(t(30), 1);
        s
    }

    #[test]
    fn value_lookup() {
        let s = series();
        assert_eq!(s.value_at(t(0)), 0);
        assert_eq!(s.value_at(t(10)), 2);
        assert_eq!(s.value_at(t(15)), 2);
        assert_eq!(s.value_at(t(25)), 4);
        assert_eq!(s.value_at(t(100)), 1);
    }

    #[test]
    fn mean_is_time_weighted() {
        let s = series();
        // Over [10, 30]: 2 for 10 s, 4 for 10 s -> mean 3.
        assert!((s.mean(t(10), t(30)) - 3.0).abs() < 1e-12);
        // Over [0, 40]: 0*10 + 2*10 + 4*10 + 1*10 = 70 / 40 = 1.75.
        assert!((s.mean(t(0), t(40)) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn integrate_arbitrary_function() {
        let s = series();
        // |v - 2| over [10, 30]: 0*10 + 2*10 = 20.
        let dev = s.integrate(t(10), t(30), |v| (v as f64 - 2.0).abs());
        assert!((dev - 20.0).abs() < 1e-12);
    }

    #[test]
    fn changes_in_window() {
        let s = series();
        assert_eq!(s.changes_in(t(0), t(100)), 3);
        assert_eq!(s.changes_in(t(10), t(20)), 1);
        assert_eq!(s.changes_in(t(11), t(20)), 0);
        assert_eq!(s.changes_in(t(30), t(31)), 1);
    }

    #[test]
    fn from_changes_log() {
        let log = vec![(t(5), 0u8, 1u8), (t(8), 1, 2), (t(12), 2, 1)];
        let s = StepSeries::from_changes(&log);
        assert_eq!(s.value_at(t(6)), 1);
        assert_eq!(s.value_at(t(9)), 2);
        assert_eq!(s.value_at(t(20)), 1);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn same_time_push_overwrites() {
        let mut s = StepSeries::new();
        s.push(t(5), 1);
        s.push(t(5), 3);
        assert_eq!(s.len(), 1);
        assert_eq!(s.value_at(t(5)), 3);
    }

    #[test]
    #[should_panic]
    fn out_of_order_push_panics() {
        let mut s = StepSeries::new();
        s.push(t(5), 1);
        s.push(t(4), 2);
    }

    #[test]
    fn empty_series() {
        let s = StepSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.value_at(t(10)), 0);
        assert_eq!(s.mean(t(0), t(10)), 0.0);
        assert_eq!(s.mean(t(5), t(5)), 0.0);
    }
}
