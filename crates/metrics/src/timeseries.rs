//! Time-series utilities for experiment post-processing: windowed
//! statistics over `(time, value)` samples, exponentially weighted moving
//! averages, and convergence-time extraction.

use crate::step::StepSeries;
use netsim::SimTime;

/// Mean of the samples falling in `[start, end)`; `None` when the window is
/// empty.
pub fn window_mean(series: &[(SimTime, f64)], start: SimTime, end: SimTime) -> Option<f64> {
    let vals: Vec<f64> =
        series.iter().filter(|&&(t, _)| t >= start && t < end).map(|&(_, v)| v).collect();
    if vals.is_empty() {
        None
    } else {
        Some(vals.iter().sum::<f64>() / vals.len() as f64)
    }
}

/// Largest sample value in `[start, end)`.
pub fn window_max(series: &[(SimTime, f64)], start: SimTime, end: SimTime) -> Option<f64> {
    series
        .iter()
        .filter(|&&(t, _)| t >= start && t < end)
        .map(|&(_, v)| v)
        .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
}

/// Exponentially weighted moving average with new-sample weight `alpha`.
pub fn ewma(series: &[(SimTime, f64)], alpha: f64) -> Vec<(SimTime, f64)> {
    assert!((0.0..=1.0).contains(&alpha));
    let mut out = Vec::with_capacity(series.len());
    let mut acc: Option<f64> = None;
    for &(t, v) in series {
        let next = match acc {
            None => v,
            Some(a) => a * (1.0 - alpha) + v * alpha,
        };
        acc = Some(next);
        out.push((t, next));
    }
    out
}

/// The earliest time after which the level series stays within
/// `tolerance` of `target` for at least `hold` seconds — the
/// convergence-time metric of the granularity/interval ablations.
///
/// Returns `None` when the series never settles.
pub fn convergence_time(
    series: &StepSeries,
    target: f64,
    tolerance: f64,
    hold_secs: f64,
    horizon: SimTime,
) -> Option<SimTime> {
    // Candidate settle points: every change point plus t=0.
    let mut candidates: Vec<SimTime> = vec![SimTime::ZERO];
    candidates.extend(series.points().map(|(t, _)| t));
    for &start in &candidates {
        if start >= horizon {
            break;
        }
        let hold_end =
            SimTime::from_secs_f64((start.as_secs_f64() + hold_secs).min(horizon.as_secs_f64()));
        if hold_end.since(start).as_secs_f64() + 1e-9 < hold_secs {
            // Not enough room before the horizon to prove the hold.
            return None;
        }
        // The series must stay within tolerance across [start, hold_end):
        // check the value at `start` and at every change inside the window.
        let ok_at = |t: SimTime| (series.value_at(t) as f64 - target).abs() <= tolerance;
        let all_ok = ok_at(start)
            && series.points().filter(|&(t, _)| t > start && t < hold_end).all(|(t, _)| ok_at(t));
        if all_ok {
            return Some(start);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn series(points: &[(u64, f64)]) -> Vec<(SimTime, f64)> {
        points.iter().map(|&(s, v)| (t(s), v)).collect()
    }

    #[test]
    fn window_stats() {
        let s = series(&[(1, 1.0), (2, 2.0), (3, 3.0), (10, 100.0)]);
        assert_eq!(window_mean(&s, t(0), t(5)), Some(2.0));
        assert_eq!(window_max(&s, t(0), t(5)), Some(3.0));
        assert_eq!(window_mean(&s, t(4), t(9)), None);
        assert_eq!(window_mean(&s, t(0), t(20)), Some(26.5));
    }

    #[test]
    fn ewma_smooths() {
        let s = series(&[(1, 0.0), (2, 1.0), (3, 1.0)]);
        let e = ewma(&s, 0.5);
        assert_eq!(e[0].1, 0.0);
        assert_eq!(e[1].1, 0.5);
        assert_eq!(e[2].1, 0.75);
    }

    #[test]
    fn ewma_alpha_one_is_identity() {
        let s = series(&[(1, 3.0), (2, 7.0)]);
        let e = ewma(&s, 1.0);
        assert_eq!(e[1].1, 7.0);
    }

    #[test]
    fn convergence_found() {
        // 0 until 10, then 2 until 20, then 4 forever.
        let mut s = StepSeries::new();
        s.push(t(10), 2);
        s.push(t(20), 4);
        let ct = convergence_time(&s, 4.0, 0.5, 30.0, t(100)).unwrap();
        assert_eq!(ct, t(20));
    }

    #[test]
    fn convergence_requires_holding() {
        // Bounces between 4 and 1 every 5 s: never holds 30 s.
        let mut s = StepSeries::new();
        for k in 0..20 {
            s.push(t(5 * k), if k % 2 == 0 { 4 } else { 1 });
        }
        assert_eq!(convergence_time(&s, 4.0, 0.5, 30.0, t(100)), None);
    }

    #[test]
    fn convergence_near_horizon_needs_room() {
        let mut s = StepSeries::new();
        s.push(t(95), 4);
        // Only 5 s left before the horizon: cannot prove a 30 s hold.
        assert_eq!(convergence_time(&s, 4.0, 0.5, 30.0, t(100)), None);
    }
}
