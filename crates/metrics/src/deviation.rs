//! The paper's relative-deviation metric.
//!
//! For receiver `i` with subscription `x_i(Δt)` and optimal level `y_i`,
//! over a set of intervals `Δt` covering a window:
//!
//! ```text
//!            Σ_Δt | (x_i(Δt) − y_i) · ‖Δt‖ |
//! rel-dev =  ───────────────────────────────
//!            Σ_Δt   y_i · ‖Δt‖
//! ```
//!
//! Smaller is better; zero means the receiver sat at its optimum for the
//! whole window. Because a subscription series is piecewise constant, the
//! sums are exact integrals over the [`StepSeries`].
//!
//! Degenerate inputs — a zero optimum (the metric's denominator vanishes)
//! or an empty window — make the metric undefined; both functions return
//! `None` rather than panicking, so machine-generated campaign scenarios
//! can treat "undefined" as an explicit skipped gate instead of a crash.

use crate::step::StepSeries;
use netsim::SimTime;

/// Relative deviation of one receiver over `[start, end]`.
///
/// Returns `None` when the metric is undefined: `optimal` is zero or the
/// window is empty (`end <= start`).
pub fn relative_deviation(
    series: &StepSeries,
    optimal: u8,
    start: SimTime,
    end: SimTime,
) -> Option<f64> {
    if optimal == 0 || end <= start {
        return None;
    }
    let num = series.integrate(start, end, |v| (v as f64 - optimal as f64).abs());
    let den = optimal as f64 * end.since(start).as_secs_f64();
    Some(num / den)
}

/// Mean relative deviation over several receivers (the quantity Fig. 8 and
/// Fig. 10 plot). `pairs` holds `(series, optimal)` per receiver.
///
/// Receivers whose individual deviation is undefined (zero optimum) are
/// excluded from the mean; returns `None` when no receiver has a defined
/// deviation — either `pairs` is empty, the window is empty, or every
/// optimum is zero.
pub fn mean_relative_deviation(
    pairs: &[(&StepSeries, u8)],
    start: SimTime,
    end: SimTime,
) -> Option<f64> {
    let vals: Vec<f64> =
        pairs.iter().filter_map(|(s, y)| relative_deviation(s, *y, start, end)).collect();
    if vals.is_empty() {
        None
    } else {
        Some(vals.iter().sum::<f64>() / vals.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn perfect_subscription_deviates_zero() {
        let mut s = StepSeries::new();
        s.push(t(0), 4);
        assert_eq!(relative_deviation(&s, 4, t(0), t(100)), Some(0.0));
    }

    #[test]
    fn constant_offset() {
        // Held at 2 while the optimum is 4: |2-4| * T / (4 * T) = 0.5.
        let mut s = StepSeries::new();
        s.push(t(0), 2);
        assert!((relative_deviation(&s, 4, t(0), t(60)).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn transient_excursion_weighted_by_time() {
        // Optimal 2; at 2 except a 10 s excursion to 4 in a 100 s window:
        // |4-2|*10 / (2*100) = 0.1.
        let mut s = StepSeries::new();
        s.push(t(0), 2);
        s.push(t(50), 4);
        s.push(t(60), 2);
        let d = relative_deviation(&s, 2, t(0), t(100)).unwrap();
        assert!((d - 0.1).abs() < 1e-12, "got {d}");
    }

    #[test]
    fn window_restriction() {
        let mut s = StepSeries::new();
        s.push(t(0), 2);
        s.push(t(50), 4);
        s.push(t(60), 2);
        // The second half [60, 100] is clean.
        assert_eq!(relative_deviation(&s, 2, t(60), t(100)), Some(0.0));
        // The window [50, 60] is entirely off by 2: 2*10/(2*10) = 1.
        assert!((relative_deviation(&s, 2, t(50), t(60)).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn over_and_under_subscription_both_count() {
        // Optimal 3: 10 s at 1 (under by 2) + 10 s at 5 (over by 2).
        let mut s = StepSeries::new();
        s.push(t(0), 1);
        s.push(t(10), 5);
        s.push(t(20), 3);
        let d = relative_deviation(&s, 3, t(0), t(20)).unwrap();
        assert!((d - 2.0 / 3.0).abs() < 1e-12, "got {d}");
    }

    #[test]
    fn mean_over_receivers() {
        let mut a = StepSeries::new();
        a.push(t(0), 4); // perfect, dev 0
        let mut b = StepSeries::new();
        b.push(t(0), 2); // optimal 4 -> dev 0.5
        let m = mean_relative_deviation(&[(&a, 4), (&b, 4)], t(0), t(10)).unwrap();
        assert!((m - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_optimum_is_undefined() {
        // Regression: this used to panic; campaign scenarios now rely on
        // the undefined case being reported, not crashed on.
        let s = StepSeries::new();
        assert_eq!(relative_deviation(&s, 0, t(0), t(1)), None);
    }

    #[test]
    fn empty_window_is_undefined() {
        // Regression: this used to panic (same fix as above).
        let mut s = StepSeries::new();
        s.push(t(0), 1);
        assert_eq!(relative_deviation(&s, 1, t(5), t(5)), None);
        assert_eq!(relative_deviation(&s, 1, t(7), t(5)), None);
    }

    #[test]
    fn mean_skips_undefined_receivers() {
        let mut a = StepSeries::new();
        a.push(t(0), 2); // optimal 4 -> dev 0.5
        let b = StepSeries::new(); // optimal 0 -> undefined, excluded
        let m = mean_relative_deviation(&[(&a, 4), (&b, 0)], t(0), t(10)).unwrap();
        assert!((m - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mean_of_nothing_is_none() {
        assert_eq!(mean_relative_deviation(&[], t(0), t(10)), None);
        let s = StepSeries::new();
        assert_eq!(mean_relative_deviation(&[(&s, 0)], t(0), t(10)), None);
        assert_eq!(mean_relative_deviation(&[(&s, 3)], t(5), t(5)), None);
    }
}
