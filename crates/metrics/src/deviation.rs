//! The paper's relative-deviation metric.
//!
//! For receiver `i` with subscription `x_i(Δt)` and optimal level `y_i`,
//! over a set of intervals `Δt` covering a window:
//!
//! ```text
//!            Σ_Δt | (x_i(Δt) − y_i) · ‖Δt‖ |
//! rel-dev =  ───────────────────────────────
//!            Σ_Δt   y_i · ‖Δt‖
//! ```
//!
//! Smaller is better; zero means the receiver sat at its optimum for the
//! whole window. Because a subscription series is piecewise constant, the
//! sums are exact integrals over the [`StepSeries`].

use crate::step::StepSeries;
use netsim::SimTime;

/// Relative deviation of one receiver over `[start, end]`.
///
/// Panics if `optimal` is zero (the metric is undefined) or the window is
/// empty.
pub fn relative_deviation(series: &StepSeries, optimal: u8, start: SimTime, end: SimTime) -> f64 {
    assert!(optimal >= 1, "relative deviation needs a positive optimum");
    assert!(end > start, "empty window");
    let num = series.integrate(start, end, |v| (v as f64 - optimal as f64).abs());
    let den = optimal as f64 * end.since(start).as_secs_f64();
    num / den
}

/// Mean relative deviation over several receivers (the quantity Fig. 8 and
/// Fig. 10 plot). `pairs` holds `(series, optimal)` per receiver.
pub fn mean_relative_deviation(pairs: &[(&StepSeries, u8)], start: SimTime, end: SimTime) -> f64 {
    assert!(!pairs.is_empty());
    pairs.iter().map(|(s, y)| relative_deviation(s, *y, start, end)).sum::<f64>()
        / pairs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn perfect_subscription_deviates_zero() {
        let mut s = StepSeries::new();
        s.push(t(0), 4);
        assert_eq!(relative_deviation(&s, 4, t(0), t(100)), 0.0);
    }

    #[test]
    fn constant_offset() {
        // Held at 2 while the optimum is 4: |2-4| * T / (4 * T) = 0.5.
        let mut s = StepSeries::new();
        s.push(t(0), 2);
        assert!((relative_deviation(&s, 4, t(0), t(60)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn transient_excursion_weighted_by_time() {
        // Optimal 2; at 2 except a 10 s excursion to 4 in a 100 s window:
        // |4-2|*10 / (2*100) = 0.1.
        let mut s = StepSeries::new();
        s.push(t(0), 2);
        s.push(t(50), 4);
        s.push(t(60), 2);
        let d = relative_deviation(&s, 2, t(0), t(100));
        assert!((d - 0.1).abs() < 1e-12, "got {d}");
    }

    #[test]
    fn window_restriction() {
        let mut s = StepSeries::new();
        s.push(t(0), 2);
        s.push(t(50), 4);
        s.push(t(60), 2);
        // The second half [60, 100] is clean.
        assert_eq!(relative_deviation(&s, 2, t(60), t(100)), 0.0);
        // The window [50, 60] is entirely off by 2: 2*10/(2*10) = 1.
        assert!((relative_deviation(&s, 2, t(50), t(60)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn over_and_under_subscription_both_count() {
        // Optimal 3: 10 s at 1 (under by 2) + 10 s at 5 (over by 2).
        let mut s = StepSeries::new();
        s.push(t(0), 1);
        s.push(t(10), 5);
        s.push(t(20), 3);
        let d = relative_deviation(&s, 3, t(0), t(20));
        assert!((d - 2.0 / 3.0).abs() < 1e-12, "got {d}");
    }

    #[test]
    fn mean_over_receivers() {
        let mut a = StepSeries::new();
        a.push(t(0), 4); // perfect, dev 0
        let mut b = StepSeries::new();
        b.push(t(0), 2); // optimal 4 -> dev 0.5
        let m = mean_relative_deviation(&[(&a, 4), (&b, 4)], t(0), t(10));
        assert!((m - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_optimum_panics() {
        let s = StepSeries::new();
        let _ = relative_deviation(&s, 0, t(0), t(1));
    }

    #[test]
    #[should_panic]
    fn empty_window_panics() {
        let mut s = StepSeries::new();
        s.push(t(0), 1);
        let _ = relative_deviation(&s, 1, t(5), t(5));
    }
}
