//! Schema-versioned audit records.
//!
//! Every record serializes to one JSON object (one JSONL line) carrying
//! `"schema": 1` and a `"kind"` discriminator:
//!
//! * `"run"` — one header per recording with the scenario label/seed;
//! * `"stage"` — one record per pipeline stage per control interval
//!   (`"stage"` ∈ `congestion | capacity | bottleneck | sharing |
//!   subscription`), stamped with the interval sequence number and the
//!   simulated time in nanoseconds;
//! * `"counters"` — a sorted dump of the counter registry;
//! * `"timers"` — per-stage wall-clock histograms (non-deterministic;
//!   determinism checks filter this kind out);
//! * `"trace"` — one causal hop of a suggestion chain (`"phase"` ∈
//!   `report | decide | apply`), keyed by the deterministic cause id the
//!   receiver minted when it sent the report (`trace.v1`).
//!
//! Encoding and decoding are exact inverses over the shim's compact
//! serializer: `decode(parse(line))` re-encodes to the original line
//! byte-for-byte (Rust's shortest-representation float formatting is
//! round-trip stable; infinite bandwidths encode as `null`). The
//! `validate` entry point in `src/bin/inspect.rs` and the CI quickstart
//! job both lean on that property.

use serde_json::{json, to_value, ToJson, Value};

/// Bump when the JSONL shape changes incompatibly.
pub const SCHEMA_VERSION: u64 = 1;

/// Stage 1 output for one node: loss input plus the three congestion
/// flags the later stages consume.
#[derive(Debug, Clone, PartialEq)]
pub struct CongestionNode {
    pub node: u64,
    pub loss: f64,
    pub self_congested: bool,
    pub congested: bool,
    pub parent_congested: bool,
}

/// Stage 2 output for one directed link (identified by its raw link id):
/// the current estimate and how this interval arrived at it.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityLink {
    pub link: u64,
    pub bps: f64,
    /// `"learned" | "recomputed" | "crept" | "reset" | "held"`.
    pub event: String,
}

/// Stage 3 output for one node. `f64::INFINITY` means unconstrained and
/// encodes as JSON `null`.
#[derive(Debug, Clone, PartialEq)]
pub struct BottleneckNode {
    pub node: u64,
    pub bottleneck_bps: f64,
    pub max_handle_bps: f64,
}

/// Stage 4 output: one session's allowed share at one shared link.
#[derive(Debug, Clone, PartialEq)]
pub struct SharingEntry {
    pub link: u64,
    pub session: u64,
    pub allowed_bps: f64,
}

/// Stage 5 output for one node: the Table I branch taken plus the
/// demand/supply levels it produced. `suggested` is the level actually
/// sent to a registered receiver at this node (`None` for internal nodes
/// and unregistered leaves).
#[derive(Debug, Clone, PartialEq)]
pub struct SubscriptionNode {
    pub node: u64,
    pub branch: String,
    pub demand: u8,
    pub supply: u8,
    pub suggested: Option<u8>,
}

/// Per-session grouping for node-indexed stage payloads.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionNodes<T> {
    pub session: u64,
    pub nodes: Vec<T>,
}

/// Aggregated statistics for one named timer.
#[derive(Debug, Clone, PartialEq)]
pub struct TimerStat {
    pub name: String,
    pub count: u64,
    pub sum_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
    /// Sorted `(pow, count)` pairs: `count` spans fell in
    /// `[2^pow, 2^(pow+1))` nanoseconds.
    pub buckets: Vec<(u32, u64)>,
}

/// Stage-specific payload of a `"stage"` record.
#[derive(Debug, Clone, PartialEq)]
pub enum StageBody {
    Congestion(Vec<SessionNodes<CongestionNode>>),
    Capacity(Vec<CapacityLink>),
    Bottleneck(Vec<SessionNodes<BottleneckNode>>),
    Sharing(Vec<SharingEntry>),
    Subscription(Vec<SessionNodes<SubscriptionNode>>),
}

impl StageBody {
    pub fn stage_name(&self) -> &'static str {
        match self {
            StageBody::Congestion(_) => "congestion",
            StageBody::Capacity(_) => "capacity",
            StageBody::Bottleneck(_) => "bottleneck",
            StageBody::Sharing(_) => "sharing",
            StageBody::Subscription(_) => "subscription",
        }
    }
}

/// One JSONL line of the audit trail.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    Run {
        label: String,
        seed: u64,
        duration_ns: u64,
    },
    Stage {
        seq: u64,
        t_ns: u64,
        body: StageBody,
    },
    Counters {
        t_ns: u64,
        entries: Vec<(String, u64)>,
    },
    Timers {
        entries: Vec<TimerStat>,
    },
    /// One causal hop of a suggestion chain: the receiver's report
    /// (`phase: "report"`), the controller decision it fed
    /// (`phase: "decide"`), or the layer change it produced
    /// (`phase: "apply"`). Hops sharing a `cause` id are one chain;
    /// `level` is the layer count reported, suggested, or applied.
    Trace {
        seq: u64,
        t_ns: u64,
        phase: String,
        session: u64,
        receiver: u64,
        cause: u64,
        level: u64,
    },
}

/// All five stage outputs of one control interval, filled by the
/// algorithm while it runs and fanned out into [`Record::Stage`]s after.
#[derive(Debug, Clone, Default)]
pub struct IntervalAudit {
    pub seq: u64,
    pub t_ns: u64,
    pub congestion: Vec<SessionNodes<CongestionNode>>,
    pub capacity: Vec<CapacityLink>,
    pub bottleneck: Vec<SessionNodes<BottleneckNode>>,
    pub sharing: Vec<SharingEntry>,
    pub subscription: Vec<SessionNodes<SubscriptionNode>>,
    /// Wall-clock spans measured around each kernel (`(stage, ns)`);
    /// routed to the timer registry, never into deterministic records.
    pub stage_ns: Vec<(&'static str, u64)>,
}

impl IntervalAudit {
    pub fn new(seq: u64, t_ns: u64) -> Self {
        IntervalAudit { seq, t_ns, ..Default::default() }
    }

    /// The five per-stage records for this interval, in pipeline order.
    pub fn records(&self) -> Vec<Record> {
        let bodies = [
            StageBody::Congestion(self.congestion.clone()),
            StageBody::Capacity(self.capacity.clone()),
            StageBody::Bottleneck(self.bottleneck.clone()),
            StageBody::Sharing(self.sharing.clone()),
            StageBody::Subscription(self.subscription.clone()),
        ];
        bodies
            .into_iter()
            .map(|body| Record::Stage { seq: self.seq, t_ns: self.t_ns, body })
            .collect()
    }
}

// --- encoding ---------------------------------------------------------

/// Finite floats encode as numbers; infinities as `null` (JSON has no
/// Inf, and `null` decodes back to `f64::INFINITY` for bandwidth
/// fields).
fn bw(v: f64) -> Value {
    if v.is_finite() {
        Value::Float(v)
    } else {
        Value::Null
    }
}

impl ToJson for CongestionNode {
    fn to_json(&self) -> Value {
        json!({
            "node": self.node,
            "loss": self.loss,
            "self_congested": self.self_congested,
            "congested": self.congested,
            "parent_congested": self.parent_congested,
        })
    }
}

impl ToJson for CapacityLink {
    fn to_json(&self) -> Value {
        json!({"link": self.link, "bps": self.bps, "event": self.event})
    }
}

impl ToJson for BottleneckNode {
    fn to_json(&self) -> Value {
        json!({
            "node": self.node,
            "bottleneck_bps": bw(self.bottleneck_bps),
            "max_handle_bps": bw(self.max_handle_bps),
        })
    }
}

impl ToJson for SharingEntry {
    fn to_json(&self) -> Value {
        json!({"link": self.link, "session": self.session, "allowed_bps": bw(self.allowed_bps)})
    }
}

impl ToJson for SubscriptionNode {
    fn to_json(&self) -> Value {
        json!({
            "node": self.node,
            "branch": self.branch,
            "demand": self.demand,
            "supply": self.supply,
            "suggested": self.suggested,
        })
    }
}

impl<T: ToJson> ToJson for SessionNodes<T> {
    fn to_json(&self) -> Value {
        json!({"session": self.session, "nodes": self.nodes})
    }
}

impl ToJson for TimerStat {
    fn to_json(&self) -> Value {
        json!({
            "name": self.name,
            "count": self.count,
            "sum_ns": self.sum_ns,
            "min_ns": self.min_ns,
            "max_ns": self.max_ns,
            "buckets": self.buckets,
        })
    }
}

impl ToJson for Record {
    fn to_json(&self) -> Value {
        match self {
            Record::Run { label, seed, duration_ns } => json!({
                "schema": SCHEMA_VERSION,
                "kind": "run",
                "label": label,
                "seed": seed,
                "duration_ns": duration_ns,
            }),
            Record::Stage { seq, t_ns, body } => {
                let payload = match body {
                    StageBody::Congestion(s) => ("sessions", to_value(s)),
                    StageBody::Capacity(l) => ("links", to_value(l)),
                    StageBody::Bottleneck(s) => ("sessions", to_value(s)),
                    StageBody::Sharing(l) => ("links", to_value(l)),
                    StageBody::Subscription(s) => ("sessions", to_value(s)),
                };
                Value::Object(vec![
                    ("schema".into(), Value::UInt(SCHEMA_VERSION)),
                    ("kind".into(), Value::String("stage".into())),
                    ("stage".into(), Value::String(body.stage_name().into())),
                    ("seq".into(), Value::UInt(*seq)),
                    ("t_ns".into(), Value::UInt(*t_ns)),
                    (payload.0.into(), payload.1),
                ])
            }
            Record::Counters { t_ns, entries } => {
                let counters =
                    Value::Object(entries.iter().map(|(k, v)| (k.clone(), to_value(v))).collect());
                json!({
                    "schema": SCHEMA_VERSION,
                    "kind": "counters",
                    "t_ns": t_ns,
                    "counters": counters,
                })
            }
            Record::Timers { entries } => json!({
                "schema": SCHEMA_VERSION,
                "kind": "timers",
                "timers": entries,
            }),
            Record::Trace { seq, t_ns, phase, session, receiver, cause, level } => json!({
                "schema": SCHEMA_VERSION,
                "kind": "trace",
                "phase": phase,
                "seq": seq,
                "t_ns": t_ns,
                "session": session,
                "receiver": receiver,
                "cause": cause,
                "level": level,
            }),
        }
    }
}

impl Record {
    /// Compact JSON, i.e. exactly one JSONL line (without the newline).
    pub fn to_jsonl(&self) -> String {
        serde_json::to_string(self).expect("record serialization is infallible")
    }
}

// --- decoding ---------------------------------------------------------

fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("missing field '{key}'"))
}

fn get_u64(v: &Value, key: &str) -> Result<u64, String> {
    field(v, key)?.as_u64().ok_or_else(|| format!("field '{key}' is not a u64"))
}

fn get_f64(v: &Value, key: &str) -> Result<f64, String> {
    field(v, key)?.as_f64().ok_or_else(|| format!("field '{key}' is not a number"))
}

/// Bandwidth field: `null` decodes to infinity.
fn get_bw(v: &Value, key: &str) -> Result<f64, String> {
    let f = field(v, key)?;
    if f.is_null() {
        Ok(f64::INFINITY)
    } else {
        f.as_f64().ok_or_else(|| format!("field '{key}' is not a number or null"))
    }
}

fn get_bool(v: &Value, key: &str) -> Result<bool, String> {
    field(v, key)?.as_bool().ok_or_else(|| format!("field '{key}' is not a bool"))
}

fn get_str(v: &Value, key: &str) -> Result<String, String> {
    Ok(field(v, key)?.as_str().ok_or_else(|| format!("field '{key}' is not a string"))?.to_string())
}

fn get_array<'a>(v: &'a Value, key: &str) -> Result<&'a [Value], String> {
    field(v, key)?.as_array().ok_or_else(|| format!("field '{key}' is not an array"))
}

fn sessions_of<T>(
    v: &Value,
    parse_node: impl Fn(&Value) -> Result<T, String>,
) -> Result<Vec<SessionNodes<T>>, String> {
    get_array(v, "sessions")?
        .iter()
        .map(|s| {
            Ok(SessionNodes {
                session: get_u64(s, "session")?,
                nodes: get_array(s, "nodes")?.iter().map(&parse_node).collect::<Result<_, _>>()?,
            })
        })
        .collect()
}

impl Record {
    /// Decode one parsed JSONL line; errors describe the first mismatch
    /// with the schema.
    pub fn from_value(v: &Value) -> Result<Record, String> {
        let schema = get_u64(v, "schema")?;
        if schema != SCHEMA_VERSION {
            return Err(format!("unsupported schema version {schema} (expected {SCHEMA_VERSION})"));
        }
        let kind = get_str(v, "kind")?;
        match kind.as_str() {
            "run" => Ok(Record::Run {
                label: get_str(v, "label")?,
                seed: get_u64(v, "seed")?,
                duration_ns: get_u64(v, "duration_ns")?,
            }),
            "stage" => {
                let stage = get_str(v, "stage")?;
                let body = match stage.as_str() {
                    "congestion" => StageBody::Congestion(sessions_of(v, |n| {
                        Ok(CongestionNode {
                            node: get_u64(n, "node")?,
                            loss: get_f64(n, "loss")?,
                            self_congested: get_bool(n, "self_congested")?,
                            congested: get_bool(n, "congested")?,
                            parent_congested: get_bool(n, "parent_congested")?,
                        })
                    })?),
                    "capacity" => StageBody::Capacity(
                        get_array(v, "links")?
                            .iter()
                            .map(|l| {
                                Ok(CapacityLink {
                                    link: get_u64(l, "link")?,
                                    bps: get_f64(l, "bps")?,
                                    event: get_str(l, "event")?,
                                })
                            })
                            .collect::<Result<_, String>>()?,
                    ),
                    "bottleneck" => StageBody::Bottleneck(sessions_of(v, |n| {
                        Ok(BottleneckNode {
                            node: get_u64(n, "node")?,
                            bottleneck_bps: get_bw(n, "bottleneck_bps")?,
                            max_handle_bps: get_bw(n, "max_handle_bps")?,
                        })
                    })?),
                    "sharing" => StageBody::Sharing(
                        get_array(v, "links")?
                            .iter()
                            .map(|l| {
                                Ok(SharingEntry {
                                    link: get_u64(l, "link")?,
                                    session: get_u64(l, "session")?,
                                    allowed_bps: get_bw(l, "allowed_bps")?,
                                })
                            })
                            .collect::<Result<_, String>>()?,
                    ),
                    "subscription" => StageBody::Subscription(sessions_of(v, |n| {
                        let suggested = match field(n, "suggested")? {
                            Value::Null => None,
                            s => Some(
                                s.as_u64()
                                    .and_then(|x| u8::try_from(x).ok())
                                    .ok_or("field 'suggested' is not a u8")?,
                            ),
                        };
                        Ok(SubscriptionNode {
                            node: get_u64(n, "node")?,
                            branch: get_str(n, "branch")?,
                            demand: u8::try_from(get_u64(n, "demand")?)
                                .map_err(|_| "field 'demand' is not a u8")?,
                            supply: u8::try_from(get_u64(n, "supply")?)
                                .map_err(|_| "field 'supply' is not a u8")?,
                            suggested,
                        })
                    })?),
                    other => return Err(format!("unknown stage '{other}'")),
                };
                Ok(Record::Stage { seq: get_u64(v, "seq")?, t_ns: get_u64(v, "t_ns")?, body })
            }
            "counters" => {
                let obj =
                    field(v, "counters")?.as_object().ok_or("field 'counters' is not an object")?;
                let entries = obj
                    .iter()
                    .map(|(k, val)| {
                        Ok((
                            k.clone(),
                            val.as_u64().ok_or_else(|| format!("counter '{k}' is not a u64"))?,
                        ))
                    })
                    .collect::<Result<_, String>>()?;
                Ok(Record::Counters { t_ns: get_u64(v, "t_ns")?, entries })
            }
            "timers" => {
                let entries = get_array(v, "timers")?
                    .iter()
                    .map(|t| {
                        let buckets = get_array(t, "buckets")?
                            .iter()
                            .map(|b| {
                                let pair = b.as_array().ok_or("timer bucket is not an array")?;
                                match pair {
                                    [p, c] => Ok((
                                        p.as_u64()
                                            .and_then(|x| u32::try_from(x).ok())
                                            .ok_or("bucket pow is not a u32")?,
                                        c.as_u64().ok_or("bucket count is not a u64")?,
                                    )),
                                    _ => Err("timer bucket is not a 2-element array".to_string()),
                                }
                            })
                            .collect::<Result<_, String>>()?;
                        Ok(TimerStat {
                            name: get_str(t, "name")?,
                            count: get_u64(t, "count")?,
                            sum_ns: get_u64(t, "sum_ns")?,
                            min_ns: get_u64(t, "min_ns")?,
                            max_ns: get_u64(t, "max_ns")?,
                            buckets,
                        })
                    })
                    .collect::<Result<_, String>>()?;
                Ok(Record::Timers { entries })
            }
            "trace" => Ok(Record::Trace {
                seq: get_u64(v, "seq")?,
                t_ns: get_u64(v, "t_ns")?,
                phase: get_str(v, "phase")?,
                session: get_u64(v, "session")?,
                receiver: get_u64(v, "receiver")?,
                cause: get_u64(v, "cause")?,
                level: get_u64(v, "level")?,
            }),
            other => Err(format!("unknown record kind '{other}'")),
        }
    }

    /// Parse and decode one JSONL line.
    pub fn from_jsonl(line: &str) -> Result<Record, String> {
        let v = serde_json::from_str(line).map_err(|e| format!("invalid JSON: {e}"))?;
        Record::from_value(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Run { label: "quickstart".into(), seed: 7, duration_ns: 30_000_000_000 },
            Record::Stage {
                seq: 3,
                t_ns: 8_000_000_000,
                body: StageBody::Congestion(vec![SessionNodes {
                    session: 1,
                    nodes: vec![CongestionNode {
                        node: 2,
                        loss: 0.0625,
                        self_congested: true,
                        congested: true,
                        parent_congested: false,
                    }],
                }]),
            },
            Record::Stage {
                seq: 3,
                t_ns: 8_000_000_000,
                body: StageBody::Capacity(vec![CapacityLink {
                    link: 1,
                    bps: 250_000.5,
                    event: "learned".into(),
                }]),
            },
            Record::Stage {
                seq: 3,
                t_ns: 8_000_000_000,
                body: StageBody::Bottleneck(vec![SessionNodes {
                    session: 1,
                    nodes: vec![
                        BottleneckNode {
                            node: 0,
                            bottleneck_bps: f64::INFINITY,
                            max_handle_bps: 1_000_000.0,
                        },
                        BottleneckNode { node: 2, bottleneck_bps: 250_000.5, max_handle_bps: 0.0 },
                    ],
                }]),
            },
            Record::Stage {
                seq: 3,
                t_ns: 8_000_000_000,
                body: StageBody::Sharing(vec![SharingEntry {
                    link: 1,
                    session: 1,
                    allowed_bps: 125_000.25,
                }]),
            },
            Record::Stage {
                seq: 3,
                t_ns: 8_000_000_000,
                body: StageBody::Subscription(vec![SessionNodes {
                    session: 1,
                    nodes: vec![
                        SubscriptionNode {
                            node: 2,
                            branch: "leaf.add".into(),
                            demand: 3,
                            supply: 3,
                            suggested: Some(3),
                        },
                        SubscriptionNode {
                            node: 1,
                            branch: "internal.accept".into(),
                            demand: 3,
                            supply: 3,
                            suggested: None,
                        },
                    ],
                }]),
            },
            Record::Counters {
                t_ns: 30_000_000_000,
                entries: vec![("ctrl.intervals".into(), 14), ("sim.drops".into(), 3)],
            },
            Record::Timers {
                entries: vec![TimerStat {
                    name: "stage1_congestion".into(),
                    count: 14,
                    sum_ns: 70_000,
                    min_ns: 3_000,
                    max_ns: 9_000,
                    buckets: vec![(11, 10), (13, 4)],
                }],
            },
            Record::Trace {
                seq: 3,
                t_ns: 8_000_000_000,
                phase: "decide".into(),
                session: 1,
                receiver: 2,
                cause: 0x9e37_79b9_7f4a_7c15,
                level: 4,
            },
        ]
    }

    #[test]
    fn jsonl_round_trip_is_exact() {
        for r in sample_records() {
            let line = r.to_jsonl();
            assert!(!line.contains('\n'), "record must be one line: {line}");
            let back = Record::from_jsonl(&line).unwrap();
            assert_eq!(back, r);
            assert_eq!(back.to_jsonl(), line, "re-encode must be byte-identical");
        }
    }

    #[test]
    fn infinity_encodes_as_null() {
        let r = Record::Stage {
            seq: 0,
            t_ns: 0,
            body: StageBody::Bottleneck(vec![SessionNodes {
                session: 1,
                nodes: vec![BottleneckNode {
                    node: 0,
                    bottleneck_bps: f64::INFINITY,
                    max_handle_bps: f64::INFINITY,
                }],
            }]),
        };
        let line = r.to_jsonl();
        assert!(line.contains("\"bottleneck_bps\":null"));
        match Record::from_jsonl(&line).unwrap() {
            Record::Stage { body: StageBody::Bottleneck(s), .. } => {
                assert!(s[0].nodes[0].bottleneck_bps.is_infinite());
            }
            other => panic!("unexpected record {other:?}"),
        }
    }

    #[test]
    fn decode_rejects_schema_drift() {
        assert!(Record::from_jsonl(r#"{"schema":2,"kind":"run"}"#)
            .unwrap_err()
            .contains("unsupported schema"));
        assert!(Record::from_jsonl(r#"{"kind":"run"}"#).unwrap_err().contains("schema"));
        assert!(Record::from_jsonl(r#"{"schema":1,"kind":"mystery"}"#)
            .unwrap_err()
            .contains("unknown record kind"));
        assert!(Record::from_jsonl(
            r#"{"schema":1,"kind":"stage","stage":"nope","seq":0,"t_ns":0}"#
        )
        .unwrap_err()
        .contains("unknown stage"));
        assert!(Record::from_jsonl("not json").unwrap_err().contains("invalid JSON"));
    }

    #[test]
    fn interval_audit_fans_out_five_stage_records() {
        let mut audit = IntervalAudit::new(4, 12_000_000_000);
        audit.capacity.push(CapacityLink { link: 0, bps: 1.0, event: "held".into() });
        let records = audit.records();
        assert_eq!(records.len(), 5);
        let stages: Vec<&str> = records
            .iter()
            .map(|r| match r {
                Record::Stage { body, .. } => body.stage_name(),
                other => panic!("unexpected record {other:?}"),
            })
            .collect();
        assert_eq!(stages, ["congestion", "capacity", "bottleneck", "sharing", "subscription"]);
        for r in &records {
            let Record::Stage { seq, t_ns, .. } = r else { unreachable!() };
            assert_eq!((*seq, *t_ns), (4, 12_000_000_000));
        }
    }
}
