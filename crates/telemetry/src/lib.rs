//! Deterministic observability for the TopoSense reproduction.
//!
//! The crate provides three instruments behind one cheap [`Telemetry`]
//! handle:
//!
//! * a **decision audit trail** — schema-versioned [`Record`]s capturing
//!   every stage's intermediate output per control interval, emitted
//!   through a pluggable [`Sink`] (JSONL file, in-memory buffer, ...);
//! * **stage timers** — wall-clock span timing aggregated into log2
//!   histograms ([`timers`]);
//! * a **counter registry** for operational events that previously
//!   happened silently ([`counters`]).
//!
//! The hard invariant is that telemetry is a *pure observer*: attaching
//! or detaching sinks must never change simulation behaviour. The handle
//! therefore exposes no way for instrumented code to read values back
//! into control decisions, and every entry point is a no-op costing one
//! `Option` branch when the handle is disabled (the default). Wall-clock
//! timings are inherently non-deterministic, so they are kept in their
//! own record kind (`"timers"`) that determinism checks can filter out;
//! everything else in the trail is a function of the simulation state
//! alone.

pub mod blackbox;
pub mod causal;
pub mod counters;
pub mod flight;
pub mod record;
pub mod sink;
pub mod timers;

pub use blackbox::{Blackbox, BLACKBOX_SCHEMA};
pub use causal::{Chain, Hop};
pub use counters::Counters;
pub use flight::{FlightRecorder, Occurrence};
pub use record::{
    BottleneckNode, CapacityLink, CongestionNode, IntervalAudit, Record, SessionNodes,
    SharingEntry, StageBody, SubscriptionNode, TimerStat, SCHEMA_VERSION,
};
pub use sink::{JsonlFileSink, MemorySink, Sink};
pub use timers::{Span, StageTimers};

use std::sync::{Arc, Mutex};

struct Inner {
    sink: Mutex<Option<Box<dyn Sink>>>,
    counters: Mutex<Counters>,
    timers: Mutex<StageTimers>,
}

/// Cheap, clonable handle to a telemetry pipeline.
///
/// `Telemetry::disabled()` (also the `Default`) carries no allocation and
/// makes every method a single-branch no-op. Enabled handles share one
/// inner state across clones, so the controller, runner, and test harness
/// can all write into the same sink/registries.
#[derive(Clone, Default)]
pub struct Telemetry(Option<Arc<Inner>>);

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            None => f.write_str("Telemetry(disabled)"),
            Some(_) => f.write_str("Telemetry(enabled)"),
        }
    }
}

impl Telemetry {
    /// The inert handle: every call is a no-op.
    pub fn disabled() -> Self {
        Telemetry(None)
    }

    /// Enabled handle with no sink: counters and timers accumulate and
    /// can be snapshotted, audit records are dropped.
    pub fn collecting() -> Self {
        Telemetry(Some(Arc::new(Inner {
            sink: Mutex::new(None),
            counters: Mutex::new(Counters::default()),
            timers: Mutex::new(StageTimers::default()),
        })))
    }

    /// Enabled handle writing records into the given sink.
    pub fn with_sink(sink: Box<dyn Sink>) -> Self {
        Telemetry(Some(Arc::new(Inner {
            sink: Mutex::new(Some(sink)),
            counters: Mutex::new(Counters::default()),
            timers: Mutex::new(StageTimers::default()),
        })))
    }

    /// Enabled handle backed by an in-memory sink; the returned
    /// [`MemorySink`] clone reads the captured records back.
    pub fn memory() -> (Self, MemorySink) {
        let sink = MemorySink::new();
        (Self::with_sink(Box::new(sink.clone())), sink)
    }

    /// Enabled handle appending JSONL to `path` (truncates an existing
    /// file).
    pub fn jsonl_file(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        Ok(Self::with_sink(Box::new(JsonlFileSink::create(path)?)))
    }

    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Emit one audit record into the sink (dropped when disabled or
    /// sink-less).
    pub fn emit(&self, record: &Record) {
        if let Some(inner) = &self.0 {
            if let Some(sink) = inner.sink.lock().unwrap().as_mut() {
                sink.emit(record);
            }
        }
    }

    /// Bump a named counter.
    pub fn incr(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.0 {
            inner.counters.lock().unwrap().incr(name, delta);
        }
    }

    /// Set a named counter to an absolute value (gauge-style harvest of
    /// totals already tracked elsewhere).
    pub fn set(&self, name: &str, value: u64) {
        if let Some(inner) = &self.0 {
            inner.counters.lock().unwrap().set(name, value);
        }
    }

    /// Record one wall-clock span for a named stage.
    pub fn record_span_ns(&self, stage: &str, ns: u64) {
        if let Some(inner) = &self.0 {
            inner.timers.lock().unwrap().record(stage, ns);
        }
    }

    /// Sorted snapshot of all counters.
    pub fn counters_snapshot(&self) -> Vec<(String, u64)> {
        match &self.0 {
            Some(inner) => inner.counters.lock().unwrap().snapshot(),
            None => Vec::new(),
        }
    }

    /// Per-stage timer statistics, sorted by stage name.
    pub fn timers_snapshot(&self) -> Vec<TimerStat> {
        match &self.0 {
            Some(inner) => inner.timers.lock().unwrap().snapshot(),
            None => Vec::new(),
        }
    }

    /// Emit the current counter registry as a `"counters"` record
    /// stamped with simulated time `t_ns`.
    pub fn emit_counters(&self, t_ns: u64) {
        if self.0.is_some() {
            let entries = self.counters_snapshot();
            self.emit(&Record::Counters { t_ns, entries });
        }
    }

    /// Emit the accumulated stage timers as a `"timers"` record.
    /// Wall-clock derived: excluded from determinism comparisons.
    pub fn emit_timers(&self) {
        if self.0.is_some() {
            let entries = self.timers_snapshot();
            self.emit(&Record::Timers { entries });
        }
    }

    /// Flush the sink (file sinks buffer internally).
    pub fn flush(&self) {
        if let Some(inner) = &self.0 {
            if let Some(sink) = inner.sink.lock().unwrap().as_mut() {
                sink.flush();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        tel.incr("x", 3);
        tel.record_span_ns("s", 10);
        tel.emit(&Record::Run { label: "t".into(), seed: 1, duration_ns: 2 });
        tel.emit_counters(0);
        tel.emit_timers();
        tel.flush();
        assert!(tel.counters_snapshot().is_empty());
        assert!(tel.timers_snapshot().is_empty());
    }

    #[test]
    fn memory_sink_captures_records_across_clones() {
        let (tel, sink) = Telemetry::memory();
        let tel2 = tel.clone();
        tel.incr("a.b", 2);
        tel2.incr("a.b", 1);
        tel2.incr("a.a", 5);
        tel.record_span_ns("stage", 100);
        tel.emit_counters(7);
        tel.emit_timers();
        let records = sink.records();
        assert_eq!(records.len(), 2);
        match &records[0] {
            Record::Counters { t_ns, entries } => {
                assert_eq!(*t_ns, 7);
                // BTreeMap order: sorted by name.
                assert_eq!(entries, &[("a.a".to_string(), 5), ("a.b".to_string(), 3)]);
            }
            other => panic!("expected counters record, got {other:?}"),
        }
        match &records[1] {
            Record::Timers { entries } => {
                assert_eq!(entries.len(), 1);
                assert_eq!(entries[0].name, "stage");
                assert_eq!(entries[0].count, 1);
                assert_eq!(entries[0].sum_ns, 100);
            }
            other => panic!("expected timers record, got {other:?}"),
        }
    }

    #[test]
    fn collecting_handle_accumulates_without_sink() {
        let tel = Telemetry::collecting();
        assert!(tel.is_enabled());
        tel.incr("n", 1);
        tel.emit(&Record::Run { label: "t".into(), seed: 0, duration_ns: 0 });
        assert_eq!(tel.counters_snapshot(), vec![("n".to_string(), 1)]);
    }
}
