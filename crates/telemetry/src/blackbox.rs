//! Black-box dumps: a bounded, deterministic snapshot written on failure.
//!
//! When a campaign gate fails, a replica is quarantined, or a chaos
//! recovery bound trips, the harness dumps a `blackbox.json` carrying the
//! recent flight-recorder window, the counter registry, the run's seed
//! and config fingerprint — everything needed to understand the last
//! moments without re-running. The dump is schema-versioned
//! (`blackbox.v1`) and round-trips exactly, so CI can diff dumps across
//! reruns the same way it diffs the JSONL trail.

use crate::flight::Occurrence;
use serde_json::{json, to_value, ToJson, Value};

/// Bump when the dump shape changes incompatibly.
pub const BLACKBOX_SCHEMA: &str = "blackbox.v1";

/// One failure dump.
#[derive(Debug, Clone, PartialEq)]
pub struct Blackbox {
    /// What tripped the dump: `"campaign_gate_failure"`,
    /// `"replica_quarantine"`, or `"chaos_recovery_failure"`.
    pub reason: String,
    /// Scenario / run / replica label.
    pub label: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Fingerprint of the effective configuration (hex).
    pub config_fingerprint: String,
    /// Simulated time of the dump in nanoseconds.
    pub t_ns: u64,
    /// Sorted counter snapshot at dump time.
    pub counters: Vec<(String, u64)>,
    /// The flight-recorder window preceding the failure.
    pub occurrences: Vec<Occurrence>,
    /// Occurrences that rolled off the ring before the dump.
    pub ring_dropped: u64,
}

impl ToJson for Blackbox {
    fn to_json(&self) -> Value {
        let counters =
            Value::Object(self.counters.iter().map(|(k, v)| (k.clone(), to_value(v))).collect());
        json!({
            "schema": BLACKBOX_SCHEMA,
            "reason": self.reason,
            "label": self.label,
            "seed": self.seed,
            "config_fingerprint": self.config_fingerprint,
            "t_ns": self.t_ns,
            "counters": counters,
            "occurrences": self.occurrences,
            "ring_dropped": self.ring_dropped,
        })
    }
}

fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("missing field '{key}'"))
}

fn get_u64(v: &Value, key: &str) -> Result<u64, String> {
    field(v, key)?.as_u64().ok_or_else(|| format!("field '{key}' is not a u64"))
}

fn get_str(v: &Value, key: &str) -> Result<String, String> {
    Ok(field(v, key)?.as_str().ok_or_else(|| format!("field '{key}' is not a string"))?.to_string())
}

/// Intern an occurrence kind back to the static label space. Kinds are a
/// closed set; an unknown kind is a schema violation worth surfacing.
fn intern_kind(kind: &str) -> Result<&'static str, String> {
    const KINDS: &[&str] = &[
        "interval_start",
        "interval_end",
        "fallback",
        "quarantine",
        "takeover",
        "checkpoint",
        "gate_failure",
        "recovery_failure",
        "view_change",
        "divergence",
        "border_summary",
        "border_fold",
    ];
    KINDS
        .iter()
        .find(|k| **k == kind)
        .copied()
        .ok_or_else(|| format!("unknown occurrence kind '{kind}'"))
}

impl Blackbox {
    /// Compact single-document JSON.
    pub fn encode(&self) -> String {
        serde_json::to_string(self).expect("blackbox serialization is infallible")
    }

    /// Parse and validate a dump; errors name the first schema mismatch.
    pub fn decode(text: &str) -> Result<Blackbox, String> {
        let v: Value = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
        let schema = get_str(&v, "schema")?;
        if schema != BLACKBOX_SCHEMA {
            return Err(format!("unsupported schema '{schema}' (expected {BLACKBOX_SCHEMA})"));
        }
        let counters = field(&v, "counters")?
            .as_object()
            .ok_or("field 'counters' is not an object")?
            .iter()
            .map(|(k, val)| {
                Ok((k.clone(), val.as_u64().ok_or_else(|| format!("counter '{k}' is not a u64"))?))
            })
            .collect::<Result<_, String>>()?;
        let occurrences = field(&v, "occurrences")?
            .as_array()
            .ok_or("field 'occurrences' is not an array")?
            .iter()
            .map(|o| {
                Ok(Occurrence {
                    t_ns: get_u64(o, "t_ns")?,
                    kind: intern_kind(&get_str(o, "kind")?)?,
                    seq: get_u64(o, "seq")?,
                    detail: get_str(o, "detail")?,
                })
            })
            .collect::<Result<_, String>>()?;
        Ok(Blackbox {
            reason: get_str(&v, "reason")?,
            label: get_str(&v, "label")?,
            seed: get_u64(&v, "seed")?,
            config_fingerprint: get_str(&v, "config_fingerprint")?,
            t_ns: get_u64(&v, "t_ns")?,
            counters,
            occurrences,
            ring_dropped: get_u64(&v, "ring_dropped")?,
        })
    }

    /// Write the dump to `path` (with a trailing newline).
    pub fn write(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.encode() + "\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Blackbox {
        Blackbox {
            reason: "replica_quarantine".into(),
            label: "replica-2".into(),
            seed: 42,
            config_fingerprint: "deadbeefcafef00d".into(),
            t_ns: 16_000_000_000,
            counters: vec![("repl.divergences".into(), 1), ("repl.view_changes".into(), 0)],
            occurrences: vec![
                Occurrence {
                    t_ns: 8_000_000_000,
                    kind: "interval_start",
                    seq: 1,
                    detail: "".into(),
                },
                Occurrence {
                    t_ns: 16_000_000_000,
                    kind: "quarantine",
                    seq: 2,
                    detail: "fp mismatch".into(),
                },
            ],
            ring_dropped: 0,
        }
    }

    #[test]
    fn encode_decode_round_trip_is_exact() {
        let bb = sample();
        let text = bb.encode();
        let back = Blackbox::decode(&text).unwrap();
        assert_eq!(back, bb);
        assert_eq!(back.encode(), text, "re-encode must be byte-identical");
    }

    #[test]
    fn decode_rejects_drift() {
        assert!(Blackbox::decode("not json").unwrap_err().contains("invalid JSON"));
        let wrong = sample().encode().replace("blackbox.v1", "blackbox.v9");
        assert!(Blackbox::decode(&wrong).unwrap_err().contains("unsupported schema"));
        let bad_kind = sample().encode().replace("quarantine", "mystery_kind");
        // The reason string also contains "quarantine"; only assert that an
        // unknown occurrence kind is rejected somewhere in the document.
        assert!(Blackbox::decode(&bad_kind).is_err());
    }

    #[test]
    fn write_and_read_back() {
        let dir = std::env::temp_dir().join("toposense-blackbox-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blackbox.json");
        let bb = sample();
        bb.write(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(Blackbox::decode(text.trim()).unwrap(), bb);
        std::fs::remove_dir_all(&dir).ok();
    }
}
