//! Causal chain reconstruction over `"trace"` records.
//!
//! A cause id is minted by a receiver when it sends a report; the
//! controller copies it onto the decision it feeds and onto the
//! suggestion it sends back, and the receiver stamps it onto the layer
//! change it applies. Grouping the `"trace"` records of one (session,
//! receiver) pair by cause id therefore reconstructs every
//! report → decide → apply chain from the JSONL trail alone.

use crate::record::Record;

/// One hop of a chain: which phase, when, and at what layer level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hop {
    pub phase: String,
    pub seq: u64,
    pub t_ns: u64,
    pub level: u64,
}

/// All hops sharing one cause id, in trail order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chain {
    pub cause: u64,
    pub session: u64,
    pub receiver: u64,
    pub hops: Vec<Hop>,
}

impl Chain {
    fn has_phase(&self, phase: &str) -> bool {
        self.hops.iter().any(|h| h.phase == phase)
    }

    /// True when the chain carries all three phases — the report reached
    /// the controller, fed a decision, and the suggestion was applied.
    pub fn is_complete(&self) -> bool {
        self.has_phase("report") && self.has_phase("decide") && self.has_phase("apply")
    }
}

/// Group the `"trace"` records of one (session, receiver) pair into
/// chains, one per cause id, preserving trail order within each chain
/// and ordering chains by first appearance.
pub fn reconstruct(records: &[Record], session: u64, receiver: u64) -> Vec<Chain> {
    let mut chains: Vec<Chain> = Vec::new();
    for r in records {
        let Record::Trace { seq, t_ns, phase, session: s, receiver: rcv, cause, level } = r else {
            continue;
        };
        if *s != session || *rcv != receiver {
            continue;
        }
        let hop = Hop { phase: phase.clone(), seq: *seq, t_ns: *t_ns, level: *level };
        match chains.iter_mut().find(|c| c.cause == *cause) {
            Some(c) => c.hops.push(hop),
            None => chains.push(Chain { cause: *cause, session, receiver, hops: vec![hop] }),
        }
    }
    chains
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(phase: &str, session: u64, receiver: u64, cause: u64, level: u64) -> Record {
        Record::Trace { seq: 1, t_ns: 1_000, phase: phase.into(), session, receiver, cause, level }
    }

    #[test]
    fn chains_group_by_cause_and_filter_by_pair() {
        let records = vec![
            trace("report", 1, 2, 77, 3),
            trace("report", 1, 9, 88, 3), // other receiver: ignored
            trace("decide", 1, 2, 77, 4),
            trace("apply", 1, 2, 77, 4),
            trace("report", 1, 2, 99, 4), // second chain, incomplete
            Record::Run { label: "x".into(), seed: 1, duration_ns: 0 },
        ];
        let chains = reconstruct(&records, 1, 2);
        assert_eq!(chains.len(), 2);
        assert!(chains[0].is_complete());
        assert_eq!(chains[0].cause, 77);
        let phases: Vec<&str> = chains[0].hops.iter().map(|h| h.phase.as_str()).collect();
        assert_eq!(phases, ["report", "decide", "apply"]);
        assert!(!chains[1].is_complete());
    }

    #[test]
    fn no_matching_records_yields_no_chains() {
        let records = vec![trace("report", 1, 2, 5, 1)];
        assert!(reconstruct(&records, 2, 2).is_empty());
        assert!(reconstruct(&[], 1, 2).is_empty());
    }
}
