//! Wall-clock span timing aggregated into per-stage log2 histograms.
//!
//! These measure *host* time (how long the five `compute_into` kernels
//! take to run), not simulated time, so they are non-deterministic by
//! nature. They live in their own `"timers"` record kind and never feed
//! back into simulation state.

use crate::record::TimerStat;
use std::collections::BTreeMap;
use std::time::Instant;

/// A started wall-clock span; read it with [`Span::elapsed_ns`].
#[derive(Debug, Clone, Copy)]
pub struct Span {
    start: Instant,
}

impl Span {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Span { start: Instant::now() }
    }

    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Histogram over durations with power-of-two nanosecond buckets:
/// bucket `p` counts spans whose duration in nanoseconds satisfies
/// `2^p <= ns < 2^(p+1)` (with `ns == 0` landing in bucket 0).
#[derive(Default, Debug, Clone)]
pub struct Histogram {
    pub count: u64,
    pub sum_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
    buckets: BTreeMap<u32, u64>,
}

impl Histogram {
    pub fn record(&mut self, ns: u64) {
        if self.count == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        let pow = if ns == 0 { 0 } else { 63 - ns.leading_zeros() };
        *self.buckets.entry(pow).or_insert(0) += 1;
    }

    /// Nonzero buckets as sorted `(pow, count)` pairs.
    pub fn buckets(&self) -> Vec<(u32, u64)> {
        self.buckets.iter().map(|(p, c)| (*p, *c)).collect()
    }

    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Approximate percentile (`0.0..=100.0`) from the log2 buckets: the
    /// upper bound of the bucket holding the `p`-th sample. `None` on an
    /// empty histogram — there is no sample to name.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        let target = ((p / 100.0 * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (&pow, &c) in &self.buckets {
            seen += c;
            if seen >= target {
                return Some(if pow >= 63 { u64::MAX } else { (1u64 << (pow + 1)) - 1 });
            }
        }
        // Unreachable while bucket counts sum to `count`; fall back to max.
        Some(self.max_ns)
    }

    /// Fold another histogram into this one (bucket-wise sum).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min_ns = other.min_ns;
            self.max_ns = other.max_ns;
        } else {
            self.min_ns = self.min_ns.min(other.min_ns);
            self.max_ns = self.max_ns.max(other.max_ns);
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        for (&pow, &c) in &other.buckets {
            *self.buckets.entry(pow).or_insert(0) += c;
        }
    }
}

/// Registry of histograms keyed by stage name (sorted for deterministic
/// snapshot order).
#[derive(Default, Debug, Clone)]
pub struct StageTimers {
    stages: BTreeMap<String, Histogram>,
}

impl StageTimers {
    pub fn record(&mut self, stage: &str, ns: u64) {
        self.stages.entry(stage.to_string()).or_default().record(ns);
    }

    pub fn get(&self, stage: &str) -> Option<&Histogram> {
        self.stages.get(stage)
    }

    pub fn snapshot(&self) -> Vec<TimerStat> {
        self.stages
            .iter()
            .map(|(name, h)| TimerStat {
                name: name.clone(),
                count: h.count,
                sum_ns: h.sum_ns,
                min_ns: h.min_ns,
                max_ns: h.max_ns,
                buckets: h.buckets(),
            })
            .collect()
    }

    /// Fold another registry into this one, merging shared stage names and
    /// adopting disjoint ones.
    pub fn merge(&mut self, other: &StageTimers) {
        for (name, h) in &other.stages {
            self.stages.entry(name.clone()).or_default().merge(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::default();
        for ns in [0, 1, 2, 3, 4, 1024, 1025] {
            h.record(ns);
        }
        assert_eq!(h.count, 7);
        assert_eq!(h.sum_ns, 2059);
        assert_eq!(h.min_ns, 0);
        assert_eq!(h.max_ns, 1025);
        // 0,1 -> pow 0; 2,3 -> pow 1; 4 -> pow 2; 1024,1025 -> pow 10.
        assert_eq!(h.buckets(), vec![(0, 2), (1, 2), (2, 1), (10, 2)]);
        assert!((h.mean_ns() - 2059.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn span_measures_monotonic_time() {
        let span = Span::new();
        let a = span.elapsed_ns();
        let b = span.elapsed_ns();
        assert!(b >= a);
    }

    #[test]
    fn empty_histogram_has_no_percentile() {
        let h = Histogram::default();
        assert_eq!(h.percentile(0.0), None);
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.percentile(100.0), None);
    }

    #[test]
    fn single_bucket_percentiles_all_agree() {
        // All samples land in the pow-10 bucket [1024, 2048): every
        // percentile resolves to the same upper bound, 2047.
        let mut h = Histogram::default();
        for ns in [1024, 1500, 2000] {
            h.record(ns);
        }
        for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), Some(2047));
        }
        // Out-of-range inputs clamp rather than panic.
        assert_eq!(h.percentile(-5.0), Some(2047));
        assert_eq!(h.percentile(250.0), Some(2047));
    }

    #[test]
    fn percentile_walks_buckets_in_order() {
        let mut h = Histogram::default();
        for _ in 0..9 {
            h.record(1); // pow 0
        }
        h.record(1 << 20); // pow 20
        assert_eq!(h.percentile(50.0), Some(1));
        assert_eq!(h.percentile(90.0), Some(1));
        assert_eq!(h.percentile(100.0), Some((1 << 21) - 1));
    }

    #[test]
    fn histogram_merge_handles_empty_sides() {
        let mut empty = Histogram::default();
        let mut full = Histogram::default();
        full.record(5);
        full.record(100);
        // empty <- full adopts min/max instead of keeping the zero min.
        empty.merge(&full);
        assert_eq!((empty.count, empty.min_ns, empty.max_ns), (2, 5, 100));
        // full <- empty is a no-op.
        let before = full.buckets();
        full.merge(&Histogram::default());
        assert_eq!((full.count, full.buckets()), (2, before));
    }

    #[test]
    fn merge_of_disjoint_registries_keeps_both_stages() {
        let mut a = StageTimers::default();
        a.record("stage1_congestion", 10);
        let mut b = StageTimers::default();
        b.record("stage5_subscription", 20);
        b.record("stage5_subscription", 30);
        a.merge(&b);
        let snap = a.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!((snap[0].name.as_str(), snap[0].count), ("stage1_congestion", 1));
        assert_eq!(
            (snap[1].name.as_str(), snap[1].count, snap[1].sum_ns),
            ("stage5_subscription", 2, 50,)
        );
        // Overlapping merge sums into the shared stage.
        a.merge(&b);
        assert_eq!(a.get("stage5_subscription").unwrap().count, 4);
    }

    #[test]
    fn stage_timers_snapshot_sorted() {
        let mut t = StageTimers::default();
        t.record("stage5_subscription", 10);
        t.record("stage1_congestion", 20);
        t.record("stage1_congestion", 30);
        let snap = t.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].name, "stage1_congestion");
        assert_eq!(snap[0].count, 2);
        assert_eq!(snap[0].sum_ns, 50);
        assert_eq!(snap[1].name, "stage5_subscription");
        assert!(t.get("stage1_congestion").is_some());
        assert!(t.get("missing").is_none());
    }
}
