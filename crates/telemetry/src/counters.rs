//! Counter registry for operational events.
//!
//! Names are dotted paths (`"ctrl.quarantines"`, `"sim.link_down_drops"`).
//! A `BTreeMap` keeps snapshots sorted, so emitted `"counters"` records
//! are deterministic given deterministic increments.

use std::collections::BTreeMap;

#[derive(Default, Debug, Clone)]
pub struct Counters {
    values: BTreeMap<String, u64>,
}

impl Counters {
    pub fn incr(&mut self, name: &str, delta: u64) {
        *self.values.entry(name.to_string()).or_insert(0) += delta;
    }

    pub fn set(&mut self, name: &str, value: u64) {
        self.values.insert(name.to_string(), value);
    }

    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// All counters, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        self.values.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// Fold another registry into this one, summing shared names. Campaign
    /// runs use this to roll per-cell counters up into one `campaign.*`
    /// snapshot; BTreeMap ordering keeps the merged result deterministic
    /// regardless of merge order.
    pub fn merge(&mut self, other: &Counters) {
        for (name, value) in &other.values {
            *self.values.entry(name.clone()).or_insert(0) += value;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incr_set_get_and_sorted_snapshot() {
        let mut c = Counters::default();
        c.incr("z.late", 1);
        c.incr("a.early", 2);
        c.incr("a.early", 3);
        c.set("m.gauge", 42);
        c.set("m.gauge", 7);
        assert_eq!(c.get("a.early"), 5);
        assert_eq!(c.get("m.gauge"), 7);
        assert_eq!(c.get("missing"), 0);
        let snap = c.snapshot();
        let names: Vec<&str> = snap.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, ["a.early", "m.gauge", "z.late"]);
    }

    #[test]
    fn merge_sums_shared_names_and_keeps_disjoint_ones() {
        let mut a = Counters::default();
        a.incr("campaign.gates_passed", 3);
        a.incr("shared", 1);
        let mut b = Counters::default();
        b.incr("campaign.gates_failed", 2);
        b.incr("shared", 4);
        a.merge(&b);
        assert_eq!(a.get("campaign.gates_passed"), 3);
        assert_eq!(a.get("campaign.gates_failed"), 2);
        assert_eq!(a.get("shared"), 5);
        // Merging an empty registry is a no-op.
        a.merge(&Counters::default());
        assert_eq!(a.snapshot().len(), 3);
    }
}
