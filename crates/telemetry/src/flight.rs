//! Control-plane flight recorder: a bounded ring of notable occurrences.
//!
//! Where the netsim `TraceLog` records packet-level happenings, this ring
//! records *control-plane* ones — interval start/end, fallback entry,
//! replica quarantine, standby takeover, checkpoint — so a black-box dump
//! after a failure can show the last window of decisions, not just the
//! last window of packets. Like every instrument in this crate it is a
//! pure observer: nothing ever reads an occurrence back into a decision.

use serde_json::{json, ToJson, Value};

/// One notable control-plane happening.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Occurrence {
    /// Simulated time in nanoseconds.
    pub t_ns: u64,
    /// Stable kind label (`"interval_start"`, `"quarantine"`, ...).
    pub kind: &'static str,
    /// Interval or replication sequence number the occurrence belongs to.
    pub seq: u64,
    /// Free-form detail (node id, fingerprint, reason...). Must be a
    /// function of simulation state only — it lands in deterministic dumps.
    pub detail: String,
}

impl ToJson for Occurrence {
    fn to_json(&self) -> Value {
        json!({"t_ns": self.t_ns, "kind": self.kind, "seq": self.seq, "detail": self.detail})
    }
}

/// A last-N ring of [`Occurrence`]s, mirroring `netsim::TraceLog`'s
/// semantics: once full, each new entry overwrites the oldest and bumps
/// `dropped`.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    cap: usize,
    ring: Vec<Occurrence>,
    head: usize,
    dropped: u64,
}

impl FlightRecorder {
    /// A recorder keeping the most recent `cap` occurrences.
    pub fn new(cap: usize) -> Self {
        FlightRecorder { cap, ring: Vec::new(), head: 0, dropped: 0 }
    }

    /// Record one occurrence. A zero-capacity recorder records nothing.
    pub fn note(&mut self, t_ns: u64, kind: &'static str, seq: u64, detail: impl Into<String>) {
        if self.cap == 0 {
            return;
        }
        let occ = Occurrence { t_ns, kind, seq, detail: detail.into() };
        if self.ring.len() < self.cap {
            self.ring.push(occ);
        } else {
            self.ring[self.head] = occ;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// The retained occurrences, oldest surviving first.
    pub fn occurrences(&self) -> Vec<Occurrence> {
        let mut out = Vec::with_capacity(self.ring.len());
        out.extend_from_slice(&self.ring[self.head..]);
        out.extend_from_slice(&self.ring[..self.head]);
        out
    }

    /// How many occurrences rolled off the front of the ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Occurrences currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_retains_the_most_recent_occurrences() {
        let mut fr = FlightRecorder::new(2);
        for i in 0..5u64 {
            fr.note(i * 1_000, "interval_start", i, format!("i{i}"));
        }
        let occs = fr.occurrences();
        assert_eq!(occs.len(), 2);
        assert_eq!((occs[0].seq, occs[1].seq), (3, 4));
        assert_eq!(fr.dropped(), 3);
    }

    #[test]
    fn zero_capacity_recorder_is_inert() {
        let mut fr = FlightRecorder::new(0);
        fr.note(1, "quarantine", 0, "r2");
        assert!(fr.is_empty());
        assert_eq!(fr.dropped(), 0);
    }

    #[test]
    fn occurrence_encodes_to_one_json_object() {
        let occ = Occurrence { t_ns: 5, kind: "takeover", seq: 9, detail: "standby 3".into() };
        let line = serde_json::to_string(&occ).unwrap();
        assert_eq!(line, r#"{"t_ns":5,"kind":"takeover","seq":9,"detail":"standby 3"}"#);
    }
}
