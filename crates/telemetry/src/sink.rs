//! Pluggable destinations for audit records.

use crate::record::Record;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// Where audit records go. Implementations must not feed anything back
/// into the simulation — a sink only ever observes.
pub trait Sink: Send {
    fn emit(&mut self, record: &Record);
    fn flush(&mut self) {}
}

/// Captures records in memory; clones share the same buffer, so keep one
/// clone to read back what a [`crate::Telemetry`] handle wrote.
#[derive(Clone, Default)]
pub struct MemorySink {
    records: Arc<Mutex<Vec<Record>>>,
}

impl MemorySink {
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Snapshot of everything captured so far.
    pub fn records(&self) -> Vec<Record> {
        self.records.lock().unwrap().clone()
    }

    pub fn len(&self) -> usize {
        self.records.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for MemorySink {
    fn emit(&mut self, record: &Record) {
        self.records.lock().unwrap().push(record.clone());
    }
}

/// Writes one compact JSON object per line to a buffered file.
pub struct JsonlFileSink {
    writer: std::io::BufWriter<std::fs::File>,
}

impl JsonlFileSink {
    /// Create (truncate) `path` and write records to it.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlFileSink { writer: std::io::BufWriter::new(file) })
    }
}

impl Sink for JsonlFileSink {
    fn emit(&mut self, record: &Record) {
        // Telemetry must never abort the run: IO errors are swallowed
        // (the file simply ends early) rather than panicking mid-sim.
        let _ = writeln!(self.writer, "{}", record.to_jsonl());
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

impl Drop for JsonlFileSink {
    fn drop(&mut self) {
        let _ = self.writer.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_shares_buffer_across_clones() {
        let sink = MemorySink::new();
        let mut writer = sink.clone();
        assert!(sink.is_empty());
        writer.emit(&Record::Run { label: "a".into(), seed: 1, duration_ns: 2 });
        assert_eq!(sink.len(), 1);
        assert_eq!(
            sink.records(),
            vec![Record::Run { label: "a".into(), seed: 1, duration_ns: 2 }]
        );
    }

    #[test]
    fn jsonl_file_sink_writes_one_line_per_record() {
        let path = std::env::temp_dir().join("telemetry_sink_test.jsonl");
        {
            let mut sink = JsonlFileSink::create(&path).unwrap();
            sink.emit(&Record::Run { label: "x".into(), seed: 3, duration_ns: 4 });
            sink.emit(&Record::Counters { t_ns: 9, entries: vec![("c".into(), 1)] });
            sink.flush();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            Record::from_jsonl(line).unwrap();
        }
        let _ = std::fs::remove_file(&path);
    }
}
