//! The layered source application.
//!
//! One [`LayeredSource`] per session. Every layer runs its own one-second
//! frame clock (with a random initial phase so concurrent sessions do not
//! beat in lockstep): at each frame boundary the traffic model draws the
//! packet count `n`, and the `n` packets are emitted evenly spaced across
//! the frame. The source transmits unconditionally — whether anything is
//! listening is the multicast tree's business, exactly as with a real
//! hierarchical source.

use crate::model::TrafficModel;
use crate::session::SessionDef;
use crate::PACKET_SIZE;
use netsim::{App, Ctx, RngStream, SimDuration};

/// Frame length: the paper's VBR model is defined on 1-second intervals.
const FRAME: SimDuration = SimDuration(1_000_000_000);

/// Timer-token encoding: low byte = layer, next byte = kind.
const KIND_FRAME: u64 = 1;
const KIND_EMIT: u64 = 2;

fn token(kind: u64, layer: u8) -> u64 {
    (kind << 8) | layer as u64
}

fn untoken(token: u64) -> (u64, u8) {
    (token >> 8, (token & 0xff) as u8)
}

/// A source transmitting every layer of one session.
pub struct LayeredSource {
    def: SessionDef,
    model: TrafficModel,
    packet_size: u32,
    /// Per-layer frame RNG.
    rngs: Vec<RngStream>,
    /// Per-layer media sequence numbers.
    seqs: Vec<u64>,
    /// Per-layer packets remaining in the current frame (for diagnostics).
    sent_packets: u64,
    sent_bytes: u64,
}

impl LayeredSource {
    pub fn new(def: SessionDef, model: TrafficModel, seed: u64) -> Self {
        let layers = def.spec.layer_count();
        let rngs = (0..layers)
            .map(|k| RngStream::derive_sub(seed, &format!("source/{}", def.id.0), k as u64))
            .collect();
        LayeredSource {
            def,
            model,
            packet_size: PACKET_SIZE,
            rngs,
            seqs: vec![0; layers],
            sent_packets: 0,
            sent_bytes: 0,
        }
    }

    /// Override the packet size (the paper uses 1000 bytes everywhere).
    pub fn with_packet_size(mut self, bytes: u32) -> Self {
        assert!(bytes > 0);
        self.packet_size = bytes;
        self
    }

    /// Total media packets emitted so far.
    pub fn sent_packets(&self) -> u64 {
        self.sent_packets
    }

    /// Total media bytes emitted so far.
    pub fn sent_bytes(&self) -> u64 {
        self.sent_bytes
    }

    fn start_frame(&mut self, ctx: &mut Ctx<'_>, layer: u8) {
        let a = self.def.spec.packets_per_sec(layer, self.packet_size);
        let n = self.model.packets_in_frame(a, &mut self.rngs[layer as usize]);
        // Evenly space the n packets across the frame; the first leaves
        // immediately so a frame's worth of traffic starts at its boundary.
        if n > 0 {
            let gap = FRAME / n as u64;
            self.emit(ctx, layer);
            for i in 1..n {
                ctx.set_timer(gap * i as u64, token(KIND_EMIT, layer));
            }
        }
        ctx.set_timer(FRAME, token(KIND_FRAME, layer));
    }

    fn emit(&mut self, ctx: &mut Ctx<'_>, layer: u8) {
        let seq = self.seqs[layer as usize];
        self.seqs[layer as usize] += 1;
        self.sent_packets += 1;
        self.sent_bytes += self.packet_size as u64;
        ctx.send_media(self.def.group_of_layer(layer), self.def.id, layer, seq, self.packet_size);
    }
}

impl App for LayeredSource {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for layer in 0..self.def.spec.max_level() {
            // Random phase in [0, 1) s per layer, so sessions and layers
            // do not all burst at the same instant.
            let phase = self.rngs[layer as usize].range_f64(0.0, 1.0);
            ctx.set_timer(SimDuration::from_secs_f64(phase), token(KIND_FRAME, layer));
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tok: u64) {
        let (kind, layer) = untoken(tok);
        match kind {
            KIND_FRAME => self.start_frame(ctx, layer),
            KIND_EMIT => self.emit(ctx, layer),
            other => unreachable!("unknown source timer kind {other}"),
        }
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_>) {
        // The crash swallowed every frame and emit timer: restart the layer
        // clocks with a fresh phase. Sequence numbers continue from where
        // they stopped, so receivers see the outage as dead air rather than
        // as a sequence gap (nothing was actually sent to lose).
        for layer in 0..self.def.spec.max_level() {
            let phase = self.rngs[layer as usize].range_f64(0.0, 1.0);
            ctx.set_timer(SimDuration::from_secs_f64(phase), token(KIND_FRAME, layer));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::LayerSpec;
    use netsim::sim::{NetworkBuilder, SimConfig};
    use netsim::{GroupId, LinkConfig, Packet, SeqTracker, SessionId, SimTime};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    struct Sink {
        groups: Vec<GroupId>,
        counts: Arc<Vec<AtomicU64>>,
    }
    impl App for Sink {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for &g in &self.groups {
                ctx.join(g);
            }
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, p: &Packet) {
            if let Some((_, layer, _)) = p.media_fields() {
                self.counts[layer as usize].fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn run(model: TrafficModel, secs: u64) -> (Vec<u64>, u64) {
        let mut b = NetworkBuilder::new(SimConfig::default());
        let s = b.add_node("src");
        let r = b.add_node("rcv");
        b.add_link(s, r, LinkConfig::kbps(100_000.0));
        let mut sim = b.build();
        let spec = LayerSpec::doubling(32_000.0, 3);
        let groups: Vec<GroupId> = (0..3).map(|_| sim.create_group(s)).collect();
        let def = SessionDef { id: SessionId(0), source: s, groups: groups.clone(), spec };
        let counts: Arc<Vec<AtomicU64>> = Arc::new((0..3).map(|_| AtomicU64::new(0)).collect());
        sim.add_app(r, Box::new(Sink { groups, counts: Arc::clone(&counts) }));
        let src = LayeredSource::new(def, model, 42);
        let src_id = sim.add_app(s, Box::new(src));
        sim.run_until(SimTime::from_secs(secs));
        let out: Vec<u64> = counts.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        let _ = src_id;
        (out, secs)
    }

    #[test]
    fn cbr_rates_match_spec() {
        let (counts, secs) = run(TrafficModel::Cbr, 60);
        // Layer rates 32/64/128 kb/s at 1000 B = 4/8/16 packets/s. Allow a
        // frame or two of slack for phase and the final partial frame.
        for (k, expect) in [(0usize, 4.0), (1, 8.0), (2, 16.0)] {
            let rate = counts[k] as f64 / secs as f64;
            assert!((rate - expect).abs() < 0.5, "layer {k}: rate {rate} != {expect}");
        }
    }

    #[test]
    fn vbr_long_run_mean_matches_spec() {
        let (counts, secs) = run(TrafficModel::Vbr { p: 3.0 }, 400);
        for (k, expect) in [(0usize, 4.0), (1, 8.0), (2, 16.0)] {
            let rate = counts[k] as f64 / secs as f64;
            assert!(
                (rate - expect).abs() < expect * 0.2,
                "layer {k}: VBR mean rate {rate} too far from {expect}"
            );
        }
    }

    #[test]
    fn sequence_numbers_are_contiguous_per_layer() {
        // Deliver over a fat link and verify no gaps with a SeqTracker.
        struct Tracking {
            group: GroupId,
            tracker: Arc<std::sync::Mutex<SeqTracker>>,
        }
        impl App for Tracking {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.join(self.group);
            }
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, p: &Packet) {
                if let Some((_, 0, seq)) = p.media_fields() {
                    self.tracker.lock().unwrap().on_packet(seq, p.size);
                }
            }
        }
        let mut b = NetworkBuilder::new(SimConfig::default());
        let s = b.add_node("src");
        let r = b.add_node("rcv");
        b.add_link(s, r, LinkConfig::kbps(100_000.0));
        let mut sim = b.build();
        let g = sim.create_group(s);
        let def = SessionDef {
            id: SessionId(0),
            source: s,
            groups: vec![g],
            spec: LayerSpec::doubling(32_000.0, 1),
        };
        let tracker = Arc::new(std::sync::Mutex::new(SeqTracker::new()));
        sim.add_app(r, Box::new(Tracking { group: g, tracker: Arc::clone(&tracker) }));
        sim.add_app(s, Box::new(LayeredSource::new(def, TrafficModel::Cbr, 7)));
        sim.run_until(SimTime::from_secs(30));
        let w = tracker.lock().unwrap().take_window();
        assert!(w.received > 100);
        assert_eq!(w.lost, 0, "uncongested fat link must not lose packets");
    }

    #[test]
    fn source_resumes_after_node_restart() {
        let mut b = NetworkBuilder::new(SimConfig::default());
        let s = b.add_node("src");
        let r = b.add_node("rcv");
        b.add_link(s, r, LinkConfig::kbps(100_000.0));
        let mut sim = b.build();
        let spec = LayerSpec::doubling(32_000.0, 1);
        let g = sim.create_group(s);
        let def = SessionDef { id: SessionId(0), source: s, groups: vec![g], spec };
        let counts: Arc<Vec<AtomicU64>> = Arc::new((0..1).map(|_| AtomicU64::new(0)).collect());
        // A sink that re-joins every second: the crash wipes the root's
        // multicast state, so someone must re-graft (in the real system the
        // receiver's dead-air repair does this).
        struct RejoiningSink {
            group: GroupId,
            counts: Arc<Vec<AtomicU64>>,
        }
        impl App for RejoiningSink {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.join(self.group);
                ctx.set_timer(SimDuration::from_secs(1), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _tok: u64) {
                ctx.join(self.group);
                ctx.set_timer(SimDuration::from_secs(1), 0);
            }
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, p: &Packet) {
                if let Some((_, layer, _)) = p.media_fields() {
                    self.counts[layer as usize].fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        sim.add_app(r, Box::new(RejoiningSink { group: g, counts: Arc::clone(&counts) }));
        sim.add_app(s, Box::new(LayeredSource::new(def, TrafficModel::Cbr, 42)));
        sim.install_faults(&netsim::FaultPlan::new().node_outage(
            s,
            SimTime::from_secs(5),
            SimTime::from_secs(6),
        ));
        sim.run_until(SimTime::from_secs(12));
        // 4 packets/s for ~11 live seconds; without the restart hook the
        // stream would stop at 5 s (~20 packets).
        let got = counts[0].load(Ordering::Relaxed);
        assert!(got > 35, "source must resume after restart, got {got} packets");
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run(TrafficModel::Vbr { p: 6.0 }, 120);
        let b = run(TrafficModel::Vbr { p: 6.0 }, 120);
        assert_eq!(a.0, b.0);
    }

    #[test]
    fn token_round_trip() {
        for kind in [KIND_FRAME, KIND_EMIT] {
            for layer in [0u8, 3, 255] {
                assert_eq!(untoken(token(kind, layer)), (kind, layer));
            }
        }
    }
}
