//! Layer rates and subscription-level arithmetic.
//!
//! A **subscription level** is the number of layers a receiver takes:
//! level 0 is nothing, level 1 the base layer, level `k` the layers
//! `0..k-1`. Levels are what the TopoSense decision table manipulates and
//! what the paper's figures plot.

/// Rates of the cumulative layers of one session.
///
/// ```
/// use traffic::LayerSpec;
/// let spec = LayerSpec::paper_default();
/// // 6 layers, base 32 kb/s, doubling: cumulative 32/96/224/480/992/2016.
/// assert_eq!(spec.cumulative_rate(4), 480_000.0);
/// // A 500 kb/s pipe fits 4 layers but not 5.
/// assert_eq!(spec.level_fitting(500_000.0), 4);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct LayerSpec {
    rates_bps: Vec<f64>,
}

impl LayerSpec {
    /// The paper's spec: 6 layers, base 32 kb/s, each double the previous
    /// (cumulative: 32 / 96 / 224 / 480 / 992 / 2016 kb/s).
    pub fn paper_default() -> Self {
        Self::doubling(32_000.0, 6)
    }

    /// `count` layers starting at `base_bps`, each double the previous.
    pub fn doubling(base_bps: f64, count: usize) -> Self {
        assert!(count >= 1 && base_bps > 0.0);
        let rates_bps = (0..count).map(|k| base_bps * (1u64 << k) as f64).collect();
        LayerSpec { rates_bps }
    }

    /// Arbitrary per-layer rates (finer-granularity codecs, §V).
    pub fn from_rates(rates_bps: Vec<f64>) -> Self {
        assert!(!rates_bps.is_empty() && rates_bps.iter().all(|&r| r > 0.0));
        LayerSpec { rates_bps }
    }

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.rates_bps.len()
    }

    /// Maximum subscription level (= layer count).
    pub fn max_level(&self) -> u8 {
        self.rates_bps.len() as u8
    }

    /// Rate of layer `k` (0-based) in bits/s.
    pub fn layer_rate(&self, k: u8) -> f64 {
        self.rates_bps[k as usize]
    }

    /// Bandwidth of subscription `level` (sum of layers `0..level`).
    pub fn cumulative_rate(&self, level: u8) -> f64 {
        self.rates_bps.iter().take(level as usize).sum()
    }

    /// Rate of the base layer — the floor every session is assumed to get
    /// in the bandwidth-sharing stage.
    pub fn base_rate(&self) -> f64 {
        self.rates_bps[0]
    }

    /// The highest level whose cumulative rate fits in `bw_bps`.
    pub fn level_fitting(&self, bw_bps: f64) -> u8 {
        let mut sum = 0.0;
        for (k, &r) in self.rates_bps.iter().enumerate() {
            sum += r;
            if sum > bw_bps {
                return k as u8;
            }
        }
        self.max_level()
    }

    /// Mean packets per second of layer `k` at `packet_size` bytes.
    pub fn packets_per_sec(&self, k: u8, packet_size: u32) -> f64 {
        self.layer_rate(k) / (packet_size as f64 * 8.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_rates() {
        let s = LayerSpec::paper_default();
        assert_eq!(s.layer_count(), 6);
        assert_eq!(s.layer_rate(0), 32_000.0);
        assert_eq!(s.layer_rate(5), 1_024_000.0);
        assert_eq!(s.cumulative_rate(0), 0.0);
        assert_eq!(s.cumulative_rate(1), 32_000.0);
        assert_eq!(s.cumulative_rate(4), 480_000.0);
        assert_eq!(s.cumulative_rate(6), 2_016_000.0);
    }

    #[test]
    fn level_fitting_brackets() {
        let s = LayerSpec::paper_default();
        assert_eq!(s.level_fitting(0.0), 0);
        assert_eq!(s.level_fitting(31_999.0), 0);
        assert_eq!(s.level_fitting(32_000.0), 1);
        assert_eq!(s.level_fitting(100_000.0), 2);
        assert_eq!(s.level_fitting(480_000.0), 4);
        assert_eq!(s.level_fitting(500_000.0), 4);
        assert_eq!(s.level_fitting(1e9), 6);
    }

    #[test]
    fn packets_per_sec_at_paper_packet_size() {
        let s = LayerSpec::paper_default();
        // 32 kb/s at 1000-byte packets = 4 packets/s.
        assert_eq!(s.packets_per_sec(0, 1000), 4.0);
        assert_eq!(s.packets_per_sec(5, 1000), 128.0);
    }

    #[test]
    fn custom_rates() {
        let s = LayerSpec::from_rates(vec![10_000.0, 15_000.0]);
        assert_eq!(s.max_level(), 2);
        assert_eq!(s.cumulative_rate(2), 25_000.0);
        assert_eq!(s.level_fitting(12_000.0), 1);
    }

    #[test]
    #[should_panic]
    fn empty_rates_panic() {
        let _ = LayerSpec::from_rates(vec![]);
    }
}
