//! CBR / VBR packet-count processes.
//!
//! Both models are expressed the same way: per one-second frame, a layer
//! emits some number of packets, evenly spaced within the frame. CBR emits
//! exactly the mean; VBR follows the two-point distribution of
//! Gopalakrishnan et al. (see crate docs) whose mean is the CBR rate and
//! whose peak is `P` times it.

use netsim::RngStream;

/// How a layer's packet count per one-second frame is drawn.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TrafficModel {
    /// Constant bit rate: the mean count every frame.
    Cbr,
    /// Variable bit rate with peak-to-mean ratio `p` (paper uses 3 and 6).
    Vbr { p: f64 },
}

impl TrafficModel {
    /// Draw the packet count for one frame given mean `a` packets/frame.
    ///
    /// For VBR: `n = 1` w.p. `1 - 1/P`, `n = P·A + 1 - P` w.p. `1/P`
    /// (rounded to the nearest packet, floored at 1).
    pub fn packets_in_frame(&self, a: f64, rng: &mut RngStream) -> u32 {
        debug_assert!(a >= 1.0, "mean packets per frame must be >= 1, got {a}");
        match *self {
            TrafficModel::Cbr => a.round() as u32,
            TrafficModel::Vbr { p } => {
                debug_assert!(p >= 1.0, "peak-to-mean ratio must be >= 1");
                if rng.chance(1.0 / p) {
                    let peak = p * a + 1.0 - p;
                    peak.round().max(1.0) as u32
                } else {
                    1
                }
            }
        }
    }

    /// Short label for experiment output ("CBR", "VBR(P=3)", …).
    pub fn label(&self) -> String {
        match *self {
            TrafficModel::Cbr => "CBR".to_string(),
            TrafficModel::Vbr { p } => format!("VBR(P={p:.0})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbr_is_exact() {
        let mut rng = RngStream::derive(1, "cbr");
        for _ in 0..32 {
            assert_eq!(TrafficModel::Cbr.packets_in_frame(4.0, &mut rng), 4);
        }
    }

    #[test]
    fn vbr_takes_only_two_values() {
        let mut rng = RngStream::derive(2, "vbr");
        let m = TrafficModel::Vbr { p: 3.0 };
        // A = 4, P = 3 -> peak = 3*4 + 1 - 3 = 10.
        for _ in 0..1000 {
            let n = m.packets_in_frame(4.0, &mut rng);
            assert!(n == 1 || n == 10, "unexpected count {n}");
        }
    }

    #[test]
    fn vbr_mean_approximates_a() {
        let mut rng = RngStream::derive(3, "vbr-mean");
        let m = TrafficModel::Vbr { p: 6.0 };
        let a = 16.0;
        let trials = 20_000;
        let total: u64 = (0..trials).map(|_| m.packets_in_frame(a, &mut rng) as u64).sum();
        let mean = total as f64 / trials as f64;
        assert!((mean - a).abs() < 0.5, "mean {mean} too far from {a}");
    }

    #[test]
    fn vbr_peak_scales_with_p() {
        let mut rng = RngStream::derive(4, "vbr-peak");
        let m = TrafficModel::Vbr { p: 6.0 };
        let a = 8.0;
        let max = (0..5000).map(|_| m.packets_in_frame(a, &mut rng)).max().unwrap();
        // Peak = 6*8 + 1 - 6 = 43.
        assert_eq!(max, 43);
    }

    #[test]
    fn vbr_never_emits_zero() {
        let mut rng = RngStream::derive(5, "vbr-zero");
        // Degenerate: A=1, P=10 -> peak = 10 + 1 - 10 = 1.
        let m = TrafficModel::Vbr { p: 10.0 };
        for _ in 0..100 {
            assert!(m.packets_in_frame(1.0, &mut rng) >= 1);
        }
    }

    #[test]
    fn labels() {
        assert_eq!(TrafficModel::Cbr.label(), "CBR");
        assert_eq!(TrafficModel::Vbr { p: 3.0 }.label(), "VBR(P=3)");
    }
}
