//! Non-conforming background traffic.
//!
//! The paper's capacity estimator must survive "transient non-conforming
//! flows" that skew bandwidth estimates. [`OnOffFlood`] is that adversary: a
//! unicast CBR blast between two nodes that switches on and off on a fixed
//! schedule, ignoring congestion entirely.

use netsim::{App, ControlBody, Ctx, NodeId, SimDuration, SimTime};
use std::sync::Arc;

/// Marker payload carried by flood packets (receivers ignore it).
#[derive(Debug)]
pub struct FloodPayload;

/// A periodic on/off unicast CBR flooder.
pub struct OnOffFlood {
    dest: NodeId,
    rate_bps: f64,
    packet_size: u32,
    on_at: SimTime,
    off_at: SimTime,
    sent: u64,
}

const TOKEN_TICK: u64 = 1;

impl OnOffFlood {
    /// Flood `dest` at `rate_bps` between `on_at` and `off_at`.
    pub fn new(dest: NodeId, rate_bps: f64, on_at: SimTime, off_at: SimTime) -> Self {
        assert!(rate_bps > 0.0 && off_at > on_at);
        OnOffFlood { dest, rate_bps, packet_size: 1000, on_at, off_at, sent: 0 }
    }

    /// Packets sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    fn gap(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.packet_size as f64 * 8.0 / self.rate_bps)
    }
}

impl App for OnOffFlood {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let delay = self.on_at.since(ctx.now());
        ctx.set_timer(delay, TOKEN_TICK);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        if ctx.now() >= self.off_at {
            return;
        }
        let body: ControlBody = Arc::new(FloodPayload);
        ctx.send_control(self.dest, self.packet_size, body);
        self.sent += 1;
        ctx.set_timer(self.gap(), TOKEN_TICK);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::sim::{NetworkBuilder, SimConfig};
    use netsim::{LinkConfig, Packet, SimTime};
    use std::sync::atomic::{AtomicU64, Ordering};

    struct CountSink(Arc<AtomicU64>);
    impl App for CountSink {
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, p: &Packet) {
            if p.control_as::<FloodPayload>().is_some() {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    #[test]
    fn flood_respects_schedule_and_rate() {
        let mut b = NetworkBuilder::new(SimConfig::default());
        let a = b.add_node("a");
        let c = b.add_node("c");
        b.add_link(a, c, LinkConfig::kbps(10_000.0));
        let mut sim = b.build();
        let got = Arc::new(AtomicU64::new(0));
        sim.add_app(c, Box::new(CountSink(Arc::clone(&got))));
        // 80 kb/s = 10 packets/s, on for 10 s => ~100 packets.
        let flood = OnOffFlood::new(c, 80_000.0, SimTime::from_secs(5), SimTime::from_secs(15));
        sim.add_app(a, Box::new(flood));
        sim.run_until(SimTime::from_secs(4));
        assert_eq!(got.load(Ordering::Relaxed), 0, "silent before on_at");
        sim.run_until(SimTime::from_secs(30));
        let n = got.load(Ordering::Relaxed);
        assert!((95..=105).contains(&n), "expected ~100 packets, got {n}");
    }
}
