//! # traffic — layered media source models
//!
//! The paper's sources transmit "a layered video session consisting of 6
//! layers. The base layer is sent at a rate of 32Kbps, with the rate
//! doubling for each subsequent layer", as 1000-byte packets, either CBR or
//! VBR. The VBR process follows Gopalakrishnan et al.: per one-second
//! interval a layer emits `n` packets where `n = 1` with probability
//! `1 - 1/P` and `n = P·A + 1 - P` with probability `1/P` (`A` = mean
//! packets per interval, `P` = peak-to-mean ratio, 2–10 observed).
//!
//! * [`layers::LayerSpec`] — layer rates and subscription-level arithmetic.
//! * [`session::SessionCatalog`] — the session → groups/layers directory
//!   that sources, receivers, and controllers share.
//! * [`model::TrafficModel`] — CBR / VBR(P) packet-count processes.
//! * [`source::LayeredSource`] — the source application agent.
//! * [`background::OnOffFlood`] — a non-conforming transient flow for
//!   robustness experiments.

pub mod background;
pub mod layers;
pub mod model;
pub mod session;
pub mod source;

pub use layers::LayerSpec;
pub use model::TrafficModel;
pub use session::{SessionCatalog, SessionDef};
pub use source::LayeredSource;

/// The paper's packet size: 1000 bytes.
pub const PACKET_SIZE: u32 = 1000;
