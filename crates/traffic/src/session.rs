//! The session directory shared by sources, receivers, and controllers.
//!
//! The paper assumes "the average bandwidth of each layer is known
//! beforehand … advertised along with the multicast address of the layer".
//! [`SessionCatalog`] is that advertisement: for every session, the ordered
//! list of groups (one per layer) and the layer rates.

use crate::layers::LayerSpec;
use netsim::{GroupId, NodeId, SessionId};
use std::sync::Arc;

/// One advertised session.
#[derive(Clone, Debug)]
pub struct SessionDef {
    pub id: SessionId,
    /// Source node (group root for every layer).
    pub source: NodeId,
    /// `groups[k]` carries layer `k`.
    pub groups: Vec<GroupId>,
    /// Advertised layer rates.
    pub spec: LayerSpec,
}

impl SessionDef {
    /// The group of a subscription level's top layer (`level >= 1`).
    pub fn group_of_layer(&self, layer: u8) -> GroupId {
        self.groups[layer as usize]
    }
}

/// All advertised sessions. Cheap to share (`Arc`) between agents.
#[derive(Clone, Debug, Default)]
pub struct SessionCatalog {
    sessions: Vec<SessionDef>,
}

impl SessionCatalog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Advertise a session; its id must equal its position.
    pub fn add(&mut self, def: SessionDef) {
        assert_eq!(
            def.id.0 as usize,
            self.sessions.len(),
            "session ids must be dense and in order"
        );
        assert_eq!(def.groups.len(), def.spec.layer_count());
        self.sessions.push(def);
    }

    /// Look up one session.
    pub fn get(&self, id: SessionId) -> &SessionDef {
        &self.sessions[id.0 as usize]
    }

    /// All sessions.
    pub fn iter(&self) -> impl Iterator<Item = &SessionDef> {
        self.sessions.iter()
    }

    /// Number of advertised sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// True when nothing is advertised.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Find which `(session, layer)` a group carries.
    pub fn locate_group(&self, g: GroupId) -> Option<(SessionId, u8)> {
        for s in &self.sessions {
            if let Some(k) = s.groups.iter().position(|&x| x == g) {
                return Some((s.id, k as u8));
            }
        }
        None
    }

    /// Freeze into a shareable handle.
    pub fn share(self) -> Arc<SessionCatalog> {
        Arc::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> SessionCatalog {
        let mut c = SessionCatalog::new();
        c.add(SessionDef {
            id: SessionId(0),
            source: NodeId(0),
            groups: vec![GroupId(0), GroupId(1)],
            spec: LayerSpec::from_rates(vec![32_000.0, 64_000.0]),
        });
        c.add(SessionDef {
            id: SessionId(1),
            source: NodeId(5),
            groups: vec![GroupId(2), GroupId(3)],
            spec: LayerSpec::from_rates(vec![32_000.0, 64_000.0]),
        });
        c
    }

    #[test]
    fn lookup_and_locate() {
        let c = catalog();
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(SessionId(1)).source, NodeId(5));
        assert_eq!(c.locate_group(GroupId(3)), Some((SessionId(1), 1)));
        assert_eq!(c.locate_group(GroupId(9)), None);
        assert_eq!(c.get(SessionId(0)).group_of_layer(1), GroupId(1));
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn out_of_order_ids_panic() {
        let mut c = SessionCatalog::new();
        c.add(SessionDef {
            id: SessionId(3),
            source: NodeId(0),
            groups: vec![GroupId(0)],
            spec: LayerSpec::from_rates(vec![1.0]),
        });
    }

    #[test]
    #[should_panic]
    fn group_count_must_match_layers() {
        let mut c = SessionCatalog::new();
        c.add(SessionDef {
            id: SessionId(0),
            source: NodeId(0),
            groups: vec![GroupId(0)],
            spec: LayerSpec::from_rates(vec![1.0, 2.0]),
        });
    }
}
