//! Sharded parallel execution: one event wheel per domain, conservative
//! lookahead synchronization at the inter-domain links.
//!
//! A [`ShardedSim`] owns a set of independent [`Simulator`]s ("shards"),
//! typically one per federation domain. Within a shard everything is the
//! ordinary sequential simulator — same wheel, same determinism contract.
//! Shards interact only through **handoffs**: a packet that reaches a
//! shard's border stub node is captured by an [`EgressApp`], carried across
//! in a per-shard-pair mailbox, and injected into the destination shard a
//! fixed `delay` later (the inter-domain propagation latency).
//!
//! ## Conservative lookahead
//!
//! Execution proceeds in **barrier epochs** of length `H = min(delay)` over
//! all registered handoffs. Each epoch, every shard runs independently (in
//! parallel) up to the epoch boundary `E`; then the runner drains all
//! mailboxes and schedules each captured packet into its destination shard.
//!
//! Correctness argument: a packet captured at time `t` in the epoch
//! `(E - H, E]` is injected at `t + delay`. Since `t > E - H` and
//! `delay >= H`, the injection time is strictly after `E` — i.e. always in
//! the destination shard's strict future, never behind its clock. The
//! handoff latency is the classic conservative-parallel-DES lookahead: the
//! physical propagation delay guarantees no cross-shard causality shorter
//! than `H` exists, so no shard can ever receive a message for simulated
//! time it has already executed. No rollback machinery (optimistic /
//! Time-Warp) is needed, and determinism is preserved: mailboxes are
//! drained in shard order, and captures within a shard are already in that
//! shard's deterministic event order.
//!
//! The sequential oracle for a sharded world is a single [`Simulator`] over
//! the same topology where each border stub hosts a [`RelayApp`] instead of
//! an [`EgressApp`]: the relay re-injects the packet `delay` later inside
//! the same event queue, which is exactly the handoff semantics minus the
//! thread boundary. `tests/netsim_differential.rs` pins the equivalence.

use crate::app::{App, Ctx};
use crate::faults::FaultPlan;
use crate::node::NodeId;
use crate::packet::Packet;
use crate::sim::{SimProfile, Simulator};
use crate::time::{SimDuration, SimTime};
use std::sync::{Arc, Mutex};

/// A mailbox of `(capture_time, packet)` pairs, shared between the egress
/// app inside a shard and the barrier drain outside it. Only ever contended
/// at epoch boundaries (workers have quiesced), so a mutex costs nothing on
/// the hot path.
pub type Outbox = Arc<Mutex<Vec<(SimTime, Packet)>>>;

/// Captures every packet delivered to its (border stub) node into an
/// [`Outbox`] for the barrier drain. Install on a stub node inside the
/// source shard; pair with [`ShardedSim::add_handoff`].
pub struct EgressApp {
    outbox: Outbox,
}

impl EgressApp {
    pub fn new(outbox: Outbox) -> Self {
        EgressApp { outbox }
    }
}

impl App for EgressApp {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: &Packet) {
        self.outbox.lock().unwrap().push((ctx.now(), packet.clone()));
    }
}

/// The sequential-oracle twin of [`EgressApp`]: re-injects every packet at
/// `dest` after `delay` inside the same simulator, mirroring the mailbox
/// handoff without a thread boundary.
pub struct RelayApp {
    pub dest: NodeId,
    pub delay: SimDuration,
}

impl App for RelayApp {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: &Packet) {
        ctx.relay(self.dest, self.delay, packet);
    }
}

struct Handoff {
    outbox: Outbox,
    dest_shard: usize,
    dest_node: NodeId,
    delay: SimDuration,
}

/// Parallel runner over per-domain [`Simulator`] shards with conservative
/// barrier synchronization (see module docs).
pub struct ShardedSim {
    shards: Vec<Simulator>,
    /// Handoffs grouped by source shard (drained in shard, then
    /// registration order — deterministic).
    handoffs: Vec<Vec<Handoff>>,
    /// Barrier frontier: every shard has fully executed `[0, clock]`.
    clock: SimTime,
    lookahead: Option<SimDuration>,
    workers: usize,
    stat_handoffs: u64,
    stat_epochs: u64,
    stat_stalls: u64,
    /// Per-shard event counts at the previous barrier (stall detection).
    events_at_barrier: Vec<u64>,
}

impl ShardedSim {
    /// Wrap independently-built shard simulators. Handoffs are registered
    /// separately; with none, the shards are fully independent and run
    /// barrier-free.
    pub fn new(shards: Vec<Simulator>) -> Self {
        assert!(!shards.is_empty(), "a sharded sim needs at least one shard");
        let n = shards.len();
        let workers = std::thread::available_parallelism().map_or(1, |p| p.get()).min(n);
        ShardedSim {
            shards,
            handoffs: (0..n).map(|_| Vec::new()).collect(),
            clock: SimTime::ZERO,
            lookahead: None,
            workers,
            stat_handoffs: 0,
            stat_epochs: 0,
            stat_stalls: 0,
            events_at_barrier: vec![0; n],
        }
    }

    /// Register a cross-shard handoff: packets captured into `outbox` (by an
    /// [`EgressApp`] inside `src_shard`) are injected at `dest_node` of
    /// `dest_shard`, `delay` after their capture time. `delay` must be
    /// positive — it is the lookahead that makes conservative sync correct;
    /// the epoch length becomes the minimum delay over all handoffs.
    pub fn add_handoff(
        &mut self,
        src_shard: usize,
        outbox: Outbox,
        dest_shard: usize,
        dest_node: NodeId,
        delay: SimDuration,
    ) {
        assert!(delay > SimDuration::ZERO, "handoff delay must be positive (it is the lookahead)");
        assert!(src_shard < self.shards.len() && dest_shard < self.shards.len());
        self.lookahead = Some(self.lookahead.map_or(delay, |h| h.min(delay)));
        self.handoffs[src_shard].push(Handoff { outbox, dest_shard, dest_node, delay });
    }

    /// The epoch length: the minimum handoff delay, or `None` while the
    /// shards are fully independent.
    pub fn lookahead(&self) -> Option<SimDuration> {
        self.lookahead
    }

    /// Worker threads the parallel phase will use (capped by shard count and
    /// the machine's available parallelism).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Borrow one shard (post-run inspection).
    pub fn shard(&self, i: usize) -> &Simulator {
        &self.shards[i]
    }

    /// Mutably borrow one shard (setup: apps, groups, faults).
    pub fn shard_mut(&mut self, i: usize) -> &mut Simulator {
        assert!(self.clock == SimTime::ZERO, "shards must be configured before the run starts");
        &mut self.shards[i]
    }

    /// Install a fault plan on one shard. Fault targets are shard-local ids;
    /// the caller partitions a global plan by link/node ownership.
    pub fn install_faults(&mut self, shard: usize, plan: &FaultPlan) {
        self.shards[shard].install_faults(plan);
    }

    /// The barrier frontier — every shard has fully executed up to here.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Total events processed across all shards.
    pub fn events_processed(&self) -> u64 {
        self.shards.iter().map(|s| s.events_processed()).sum()
    }

    /// Packets alive across all shards (0 after a drained run).
    pub fn packets_live(&self) -> usize {
        self.shards.iter().map(|s| s.packets_live()).sum()
    }

    /// Run every shard to `deadline`, epoch by epoch.
    pub fn run_until(&mut self, deadline: SimTime) {
        while self.clock < deadline {
            let epoch_end = match self.lookahead {
                // Independent shards: no causality to protect, one epoch.
                None => deadline,
                Some(h) => deadline.min(self.clock + h),
            };
            self.run_shards_to(epoch_end);
            self.stat_epochs += 1;
            for (i, s) in self.shards.iter().enumerate() {
                if s.events_processed() == self.events_at_barrier[i] {
                    self.stat_stalls += 1;
                }
                self.events_at_barrier[i] = s.events_processed();
            }
            self.drain_mailboxes();
            self.clock = epoch_end;
        }
    }

    /// The parallel phase: shards advance independently to `until` on a
    /// scoped thread pool — one contiguous chunk of shards per worker, no
    /// work stealing, so the schedule (and therefore any ordering inside a
    /// shard) never depends on thread timing.
    fn run_shards_to(&mut self, until: SimTime) {
        if self.workers <= 1 || self.shards.len() <= 1 {
            for s in &mut self.shards {
                s.run_until(until);
            }
            return;
        }
        let chunk = self.shards.len().div_ceil(self.workers);
        std::thread::scope(|scope| {
            for shards in self.shards.chunks_mut(chunk) {
                scope.spawn(move || {
                    for s in shards {
                        s.run_until(until);
                    }
                });
            }
        });
    }

    /// The barrier phase: move every captured packet into its destination
    /// shard's queue at `capture + delay` — by the lookahead argument this
    /// is always in the destination's strict future.
    fn drain_mailboxes(&mut self) {
        for src in 0..self.handoffs.len() {
            for h in 0..self.handoffs[src].len() {
                let Handoff { ref outbox, dest_shard, dest_node, delay } = self.handoffs[src][h];
                let captured = std::mem::take(&mut *outbox.lock().unwrap());
                for (t, packet) in captured {
                    self.stat_handoffs += 1;
                    self.shards[dest_shard].schedule_arrival(
                        t + delay,
                        dest_node,
                        packet.forwarded_to(dest_node, dest_node),
                    );
                }
            }
        }
    }

    /// Merged profile: per-shard counters folded together, plus the barrier
    /// bookkeeping (`shard_*` fields) only this runner can observe.
    pub fn profile(&self) -> SimProfile {
        let mut merged = SimProfile { shard_events_min: u64::MAX, ..SimProfile::default() };
        for s in &self.shards {
            merged.merge(&s.profile());
        }
        merged.shards = self.shards.len() as u64;
        merged.shard_handoffs = self.stat_handoffs;
        merged.shard_barrier_epochs = self.stat_epochs;
        merged.shard_lookahead_stalls = self.stat_stalls;
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use crate::multicast::GroupId;
    use crate::packet::SessionId;
    use crate::sim::{NetworkBuilder, SimConfig};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// CBR source unicasting to a fixed node.
    struct Pinger {
        dest: NodeId,
        period: SimDuration,
    }

    impl App for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(SimDuration::from_millis(1), 0);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            ctx.send_control(self.dest, 1000, Arc::new(()));
            ctx.set_timer(self.period, 0);
        }
    }

    struct Counter {
        hits: Arc<AtomicU64>,
    }

    impl App for Counter {
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _packet: &Packet) {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// One shard: a -- stub, where the stub's egress feeds shard 1's
    /// b -- sink chain. The oracle is the same run with a relay stub.
    #[test]
    fn two_shard_pipeline_matches_relay_oracle() {
        let delay = SimDuration::from_millis(20);

        // Sharded world.
        let mut nb0 = NetworkBuilder::new(SimConfig::default());
        let a = nb0.add_node("a");
        let stub = nb0.add_node("stub");
        nb0.add_link(a, stub, LinkConfig::kbps(10_000.0));
        let mut s0 = nb0.build();
        s0.add_app(a, Box::new(Pinger { dest: stub, period: SimDuration::from_millis(10) }));
        let outbox: Outbox = Arc::default();
        s0.add_app(stub, Box::new(EgressApp::new(Arc::clone(&outbox))));

        let mut nb1 = NetworkBuilder::new(SimConfig::default());
        let b = nb1.add_node("b");
        let sink = nb1.add_node("sink");
        nb1.add_link(b, sink, LinkConfig::kbps(10_000.0));
        let mut s1 = nb1.build();
        let hits = Arc::new(AtomicU64::new(0));
        // The handoff lands at b addressed to b; a relay app forwards on to
        // the sink so the second shard's link actually carries traffic.
        s1.add_app(b, Box::new(RelayApp { dest: sink, delay: SimDuration::from_millis(1) }));
        s1.add_app(sink, Box::new(Counter { hits: Arc::clone(&hits) }));

        let mut sharded = ShardedSim::new(vec![s0, s1]);
        sharded.add_handoff(0, outbox, 1, b, delay);
        sharded.run_until(SimTime::from_secs(2));

        // Oracle: both halves in one simulator, stub relays to b.
        let mut nb = NetworkBuilder::new(SimConfig::default());
        let oa = nb.add_node("a");
        let ostub = nb.add_node("stub");
        let ob = nb.add_node("b");
        let osink = nb.add_node("sink");
        nb.add_link(oa, ostub, LinkConfig::kbps(10_000.0));
        nb.add_link(ob, osink, LinkConfig::kbps(10_000.0));
        let mut oracle = nb.build();
        oracle.add_app(oa, Box::new(Pinger { dest: ostub, period: SimDuration::from_millis(10) }));
        oracle.add_app(ostub, Box::new(RelayApp { dest: ob, delay }));
        let ohits = Arc::new(AtomicU64::new(0));
        oracle.add_app(ob, Box::new(RelayApp { dest: osink, delay: SimDuration::from_millis(1) }));
        oracle.add_app(osink, Box::new(Counter { hits: Arc::clone(&ohits) }));
        oracle.run_until(SimTime::from_secs(2));

        assert_eq!(hits.load(Ordering::Relaxed), ohits.load(Ordering::Relaxed));
        assert!(hits.load(Ordering::Relaxed) > 100);
        assert_eq!(sharded.events_processed(), oracle.events_processed());
        // In-flight handoffs at the cutoff stay alive in both worlds alike.
        assert_eq!(sharded.packets_live(), oracle.packets_live());
        let p = sharded.profile();
        assert_eq!(p.shards, 2);
        assert!(p.shard_handoffs > 100);
        assert!(p.shard_barrier_epochs >= 100, "2 s / 20 ms lookahead = 100 epochs");
        assert_eq!(p.events_total, oracle.events_processed());
        assert!(p.shard_events_min <= p.shard_events_max);
    }

    /// Multicast inside a shard fed by a handoff from another shard: the
    /// batched join and the border re-origination compose.
    #[test]
    fn handoff_feeds_domain_multicast() {
        struct BorderFeeder {
            group: GroupId,
            seq: u64,
        }
        impl App for BorderFeeder {
            fn on_packet(&mut self, ctx: &mut Ctx<'_>, _packet: &Packet) {
                ctx.send_media(self.group, SessionId(0), 0, self.seq, 1000);
                self.seq += 1;
            }
        }

        let mut nb0 = NetworkBuilder::new(SimConfig::default());
        let src = nb0.add_node("src");
        let stub = nb0.add_node("stub");
        nb0.add_link(src, stub, LinkConfig::kbps(50_000.0));
        let mut s0 = nb0.build();
        s0.add_app(src, Box::new(Pinger { dest: stub, period: SimDuration::from_millis(5) }));
        let outbox: Outbox = Arc::default();
        s0.add_app(stub, Box::new(EgressApp::new(Arc::clone(&outbox))));

        // Shard 1: border with a 3-leaf star, every leaf subscribed.
        let mut nb1 = NetworkBuilder::new(SimConfig::default());
        let border = nb1.add_node("border");
        let leaves: Vec<NodeId> = (0..3).map(|i| nb1.add_node(format!("leaf{i}"))).collect();
        for &l in &leaves {
            nb1.add_link(border, l, LinkConfig::kbps(50_000.0));
        }
        let mut s1 = nb1.build();
        let group = s1.create_group(border);
        s1.add_app(border, Box::new(BorderFeeder { group, seq: 0 }));
        let hits = Arc::new(AtomicU64::new(0));
        let mut members = Vec::new();
        for &l in &leaves {
            let app = s1.add_app(l, Box::new(Counter { hits: Arc::clone(&hits) }));
            members.push((l, app));
        }
        s1.batch_join(group, &members);

        let mut sharded = ShardedSim::new(vec![s0, s1]);
        sharded.add_handoff(0, outbox, 1, border, SimDuration::from_millis(10));
        sharded.run_until(SimTime::from_secs(1));

        // 200 feeds/s × 3 leaves, less the pipeline fill: two 200 ms default
        // propagation delays plus the 10 ms handoff ≈ 0.41 s of the 1 s run.
        let got = hits.load(Ordering::Relaxed);
        assert!(got > 300, "expected ~354 deliveries, got {got}");
        for i in 0..sharded.shard_count() {
            sharded.shard(i).network().multicast_audit().unwrap();
        }
    }
}
