//! Fixed-point simulated time.
//!
//! Time is a `u64` count of **nanoseconds** since the start of the
//! simulation. Nanosecond resolution keeps serialization times of single
//! packets on multi-megabit links exact enough that event ordering is stable,
//! while still allowing runs of ~584 simulated years before overflow.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute instant in simulated time (nanoseconds since t=0).
///
/// ```
/// use netsim::{SimTime, SimDuration};
/// let t = SimTime::from_secs(10) + SimDuration::from_millis(500);
/// assert_eq!(t.as_secs_f64(), 10.5);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

pub const NANOS_PER_SEC: u64 = 1_000_000_000;
pub const NANOS_PER_MILLI: u64 = 1_000_000;
pub const NANOS_PER_MICRO: u64 = 1_000;

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// A time later than any time reachable in practice.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole simulated seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * NANOS_PER_SEC)
    }

    /// Construct from fractional simulated seconds.
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid time {s}");
        SimTime((s * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Construct from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * NANOS_PER_MILLI)
    }

    /// This instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Nanosecond tick count.
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating subtraction of a duration.
    pub fn saturating_sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole simulated seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    /// Construct from fractional simulated seconds.
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration {s}");
        SimDuration((s * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Construct from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * NANOS_PER_MILLI)
    }

    /// Construct from whole microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us * NANOS_PER_MICRO)
    }

    /// This duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Nanosecond tick count.
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// The wire time of `bytes` at `bits_per_sec` (rounded up to a whole
    /// nanosecond so back-to-back packets never collapse onto one instant).
    pub fn serialization(bytes: u64, bits_per_sec: f64) -> Self {
        assert!(bits_per_sec > 0.0, "link bandwidth must be positive");
        let bits = bytes as f64 * 8.0;
        let secs = bits / bits_per_sec;
        SimDuration((secs * NANOS_PER_SEC as f64).ceil() as u64)
    }

    /// True when zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("negative SimDuration"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("negative SimDuration"))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).nanos(), 3 * NANOS_PER_SEC);
        assert_eq!(SimTime::from_millis(250).as_secs_f64(), 0.25);
        assert_eq!(SimDuration::from_secs_f64(1.5).nanos(), 1_500_000_000);
        assert_eq!(SimTime::from_secs_f64(2.0), SimTime::from_secs(2));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_millis(500);
        assert_eq!((t + d).as_secs_f64(), 10.5);
        assert_eq!((t + d) - t, d);
        assert_eq!(d * 4, SimDuration::from_secs(2));
        assert_eq!(SimDuration::from_secs(2) / 4, d);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(b.since(a), SimDuration::from_secs(1));
    }

    #[test]
    fn serialization_time_of_1000_bytes_at_32kbps() {
        // 8000 bits at 32_000 bits/s = 0.25 s.
        let d = SimDuration::serialization(1000, 32_000.0);
        assert_eq!(d, SimDuration::from_millis(250));
    }

    #[test]
    fn serialization_rounds_up() {
        // 8 bits at 3 bit/s = 2.666..s -> ceil in nanoseconds.
        let d = SimDuration::serialization(1, 3.0);
        assert!(d > SimDuration::from_secs_f64(2.6666));
        assert!(d <= SimDuration::from_secs_f64(2.6667));
    }

    #[test]
    #[should_panic]
    fn negative_duration_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimTime::ZERO < SimTime::MAX);
    }
}
