//! Lightweight structured tracing: a flight recorder for the simulator.
//!
//! Disabled by default (zero cost beyond a branch); scenarios that need the
//! Fig. 9-style event history enable it and drain the records afterwards.
//! The log is a *ring*: once `cap` events are recorded, each new event
//! overwrites the oldest, so what survives is always the most recent window
//! — exactly what a black-box dump after a failure needs.

use crate::link::DirLinkId;
use crate::node::NodeId;
use crate::time::SimTime;

/// Why a packet was dropped — black-box dumps must distinguish congestion
/// loss (the control loop's signal) from fault loss (the chaos plan's).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// The link's queue was full (drop-tail or priority-drop congestion).
    QueueFull,
    /// The link itself was down (outage flush or refusal at a dead link).
    LinkDown,
    /// The link's endpoint node crashed (outage flush on its out-links).
    NodeDown,
}

impl DropReason {
    /// Stable lower-case label for dumps and counters.
    pub fn label(self) -> &'static str {
        match self {
            DropReason::QueueFull => "queue_full",
            DropReason::LinkDown => "link_down",
            DropReason::NodeDown => "node_down",
        }
    }
}

/// One traced occurrence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceEvent {
    /// A packet was dropped.
    Drop { time: SimTime, link: DirLinkId, bytes: u32, reason: DropReason },
    /// A directed link changed state (fault injection).
    LinkState { time: SimTime, link: DirLinkId, up: bool },
    /// A node crashed or restarted (fault injection).
    NodeState { time: SimTime, node: NodeId, up: bool },
}

impl TraceEvent {
    /// The simulated instant of the occurrence.
    pub fn time(&self) -> SimTime {
        match *self {
            TraceEvent::Drop { time, .. }
            | TraceEvent::LinkState { time, .. }
            | TraceEvent::NodeState { time, .. } => time,
        }
    }
}

/// A bounded in-memory ring of the most recent trace events.
pub struct TraceLog {
    enabled: bool,
    cap: usize,
    events: Vec<TraceEvent>,
    /// Next slot to overwrite once the ring is full.
    head: usize,
    overflowed: bool,
    dropped: u64,
}

impl TraceLog {
    /// A trace that records nothing.
    pub fn disabled() -> Self {
        TraceLog {
            enabled: false,
            cap: 0,
            events: Vec::new(),
            head: 0,
            overflowed: false,
            dropped: 0,
        }
    }

    /// A trace that keeps the most recent `cap` events; older ones are
    /// overwritten (and counted in [`TraceLog::dropped`]).
    pub fn bounded(cap: usize) -> Self {
        TraceLog { enabled: true, cap, events: Vec::new(), head: 0, overflowed: false, dropped: 0 }
    }

    /// Enable recording on an existing log.
    pub fn enable(&mut self, cap: usize) {
        self.enabled = true;
        self.cap = cap;
    }

    pub(crate) fn drop(&mut self, time: SimTime, link: DirLinkId, bytes: u32, reason: DropReason) {
        self.record(TraceEvent::Drop { time, link, bytes, reason });
    }

    pub(crate) fn link_state(&mut self, time: SimTime, link: DirLinkId, up: bool) {
        self.record(TraceEvent::LinkState { time, link, up });
    }

    pub(crate) fn node_state(&mut self, time: SimTime, node: NodeId, up: bool) {
        self.record(TraceEvent::NodeState { time, node, up });
    }

    fn record(&mut self, ev: TraceEvent) {
        if !self.enabled || self.cap == 0 {
            return;
        }
        if self.events.len() < self.cap {
            self.events.push(ev);
        } else {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.overflowed = true;
            self.dropped += 1;
        }
    }

    /// The recorded events, oldest surviving first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.events.len());
        out.extend_from_slice(&self.events[self.head..]);
        out.extend_from_slice(&self.events[..self.head]);
        out
    }

    /// True if old events were overwritten because the bound was hit.
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// How many events were overwritten past the bound. An overflowed ring
    /// is still useful — it holds the *latest* window — but only if the
    /// reader knows how much history rolled off the front.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded (or recording is off).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drain all recorded events, oldest surviving first.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        let out = self.events();
        self.events.clear();
        self.head = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let mut t = TraceLog::disabled();
        t.drop(SimTime::ZERO, DirLinkId(0), 100, DropReason::QueueFull);
        assert!(t.events().is_empty());
        assert!(!t.overflowed());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_keeps_the_most_recent_events() {
        // Regression: the old log kept the *first* `cap` events and dropped
        // the newest — useless as a flight recorder. The ring must retain
        // the last `cap`, in order, and count what rolled off.
        let mut t = TraceLog::bounded(2);
        for i in 0..5 {
            t.drop(SimTime::from_secs(i), DirLinkId(0), 100, DropReason::QueueFull);
        }
        let evs = t.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].time(), SimTime::from_secs(3));
        assert_eq!(evs[1].time(), SimTime::from_secs(4));
        assert!(t.overflowed());
        assert_eq!(t.dropped(), 3, "every event rolled off the ring is counted");
    }

    #[test]
    fn log_at_exact_capacity_reports_no_loss() {
        let mut t = TraceLog::bounded(2);
        for i in 0..2 {
            t.drop(SimTime::from_secs(i), DirLinkId(0), 100, DropReason::QueueFull);
        }
        assert_eq!(t.events().len(), 2);
        assert!(!t.overflowed());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_order_is_chronological_after_wraparound() {
        let mut t = TraceLog::bounded(3);
        for i in 0..7 {
            t.drop(SimTime::from_secs(i), DirLinkId(0), 1, DropReason::LinkDown);
        }
        let times: Vec<u64> = t.events().iter().map(|e| e.time().as_secs_f64() as u64).collect();
        assert_eq!(times, vec![4, 5, 6]);
        assert_eq!(t.dropped(), 4);
    }

    #[test]
    fn take_drains() {
        let mut t = TraceLog::bounded(8);
        t.drop(SimTime::ZERO, DirLinkId(1), 50, DropReason::NodeDown);
        let evs = t.take();
        assert_eq!(evs.len(), 1);
        assert!(t.events().is_empty());
        match evs[0] {
            TraceEvent::Drop { link, bytes, reason, .. } => {
                assert_eq!(link, DirLinkId(1));
                assert_eq!(bytes, 50);
                assert_eq!(reason, DropReason::NodeDown);
            }
            other => panic!("expected a drop, got {other:?}"),
        }
    }

    #[test]
    fn zero_cap_enabled_ring_records_nothing() {
        let mut t = TraceLog::bounded(0);
        t.drop(SimTime::ZERO, DirLinkId(0), 1, DropReason::QueueFull);
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
    }
}
