//! Lightweight structured tracing.
//!
//! Disabled by default (zero cost beyond a branch); scenarios that need the
//! Fig. 9-style event history enable it and drain the records afterwards.

use crate::link::DirLinkId;
use crate::node::NodeId;
use crate::time::SimTime;

/// One traced occurrence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceEvent {
    /// A packet was dropped at a full queue.
    Drop { time: SimTime, link: DirLinkId, bytes: u32 },
    /// A directed link changed state (fault injection).
    LinkState { time: SimTime, link: DirLinkId, up: bool },
    /// A node crashed or restarted (fault injection).
    NodeState { time: SimTime, node: NodeId, up: bool },
}

/// A bounded in-memory trace.
pub struct TraceLog {
    enabled: bool,
    cap: usize,
    events: Vec<TraceEvent>,
    overflowed: bool,
    dropped: u64,
}

impl TraceLog {
    /// A trace that records nothing.
    pub fn disabled() -> Self {
        TraceLog { enabled: false, cap: 0, events: Vec::new(), overflowed: false, dropped: 0 }
    }

    /// A trace that keeps up to `cap` events, then stops recording (and
    /// remembers that it overflowed, and how many events it lost).
    pub fn bounded(cap: usize) -> Self {
        TraceLog { enabled: true, cap, events: Vec::new(), overflowed: false, dropped: 0 }
    }

    /// Enable recording on an existing log.
    pub fn enable(&mut self, cap: usize) {
        self.enabled = true;
        self.cap = cap;
    }

    pub(crate) fn drop(&mut self, time: SimTime, link: DirLinkId, bytes: u32) {
        self.record(TraceEvent::Drop { time, link, bytes });
    }

    pub(crate) fn link_state(&mut self, time: SimTime, link: DirLinkId, up: bool) {
        self.record(TraceEvent::LinkState { time, link, up });
    }

    pub(crate) fn node_state(&mut self, time: SimTime, node: NodeId, up: bool) {
        self.record(TraceEvent::NodeState { time, node, up });
    }

    fn record(&mut self, ev: TraceEvent) {
        if !self.enabled {
            return;
        }
        if self.events.len() < self.cap {
            self.events.push(ev);
        } else {
            self.overflowed = true;
            self.dropped += 1;
        }
    }

    /// The recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// True if events were discarded because the bound was hit.
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// How many events were discarded past the bound. An overflowed trace
    /// is still useful, but only if the reader knows how much is missing.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drain all recorded events.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let mut t = TraceLog::disabled();
        t.drop(SimTime::ZERO, DirLinkId(0), 100);
        assert!(t.events().is_empty());
        assert!(!t.overflowed());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn bounded_log_caps_and_flags_overflow() {
        let mut t = TraceLog::bounded(2);
        for i in 0..5 {
            t.drop(SimTime::from_secs(i), DirLinkId(0), 100);
        }
        assert_eq!(t.events().len(), 2);
        assert!(t.overflowed());
        assert_eq!(t.dropped(), 3, "every event past the cap is counted");
    }

    #[test]
    fn log_at_exact_capacity_reports_no_loss() {
        let mut t = TraceLog::bounded(2);
        for i in 0..2 {
            t.drop(SimTime::from_secs(i), DirLinkId(0), 100);
        }
        assert_eq!(t.events().len(), 2);
        assert!(!t.overflowed());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn take_drains() {
        let mut t = TraceLog::bounded(8);
        t.drop(SimTime::ZERO, DirLinkId(1), 50);
        let evs = t.take();
        assert_eq!(evs.len(), 1);
        assert!(t.events().is_empty());
        match evs[0] {
            TraceEvent::Drop { link, bytes, .. } => {
                assert_eq!(link, DirLinkId(1));
                assert_eq!(bytes, 50);
            }
            other => panic!("expected a drop, got {other:?}"),
        }
    }
}
