//! Nodes (routers/hosts) and unicast routing.
//!
//! A node is a router that may also host application agents (a media source,
//! a receiver, a controller). Unicast routing is precomputed: after the
//! topology is frozen, a breadth-first search from every node fills a
//! next-hop table. All evaluation topologies in the paper are trees, so the
//! routes are the unique tree paths, but the BFS works for any connected
//! graph.

use crate::app::AppId;
use crate::link::DirLinkId;
use std::collections::VecDeque;

/// Index of a node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One router/host.
///
/// Liveness (crashed or not) is *not* stored here: the simulator keeps it in
/// a dense per-network bitmap (`Network::node_up`) because the up-check runs
/// on every packet arrival and every timer, and a bitmap stays cache-resident
/// where an array of `Node` structs (label string, link and app lists) does
/// not.
#[derive(Debug, Default)]
pub struct Node {
    /// Outgoing directed links.
    pub out_links: Vec<DirLinkId>,
    /// Applications hosted here.
    pub apps: Vec<AppId>,
    /// Human-readable label for traces and error messages.
    pub label: String,
}

/// Precomputed next-hop table: `next[from][to]` is the directed link to take
/// at `from` for a packet headed to `to`.
pub struct Routing {
    next: Vec<Vec<Option<DirLinkId>>>,
}

impl Routing {
    /// Build by BFS from every destination over `links`, where each entry is
    /// `(id, from, to)` of a directed link.
    pub fn build(num_nodes: usize, links: &[(DirLinkId, NodeId, NodeId)]) -> Self {
        // Adjacency: for each node, its outgoing (link, neighbor) pairs.
        let mut adj: Vec<Vec<(DirLinkId, NodeId)>> = vec![Vec::new(); num_nodes];
        for &(id, from, to) in links {
            adj[from.index()].push((id, to));
        }
        let mut next = vec![vec![None; num_nodes]; num_nodes];
        // BFS outward from each source; first-found path is shortest (hops).
        for src in 0..num_nodes {
            let mut visited = vec![false; num_nodes];
            visited[src] = true;
            let mut q = VecDeque::new();
            // Seed with each first hop so we can record the originating link.
            for &(l, nb) in &adj[src] {
                if !visited[nb.index()] {
                    visited[nb.index()] = true;
                    next[src][nb.index()] = Some(l);
                    q.push_back(nb);
                }
            }
            while let Some(n) = q.pop_front() {
                let via = next[src][n.index()];
                for &(_, nb) in &adj[n.index()] {
                    if !visited[nb.index()] {
                        visited[nb.index()] = true;
                        next[src][nb.index()] = via;
                        q.push_back(nb);
                    }
                }
            }
        }
        Routing { next }
    }

    /// Next directed link at `from` toward `to`, or `None` if unreachable or
    /// already there.
    pub fn next_hop(&self, from: NodeId, to: NodeId) -> Option<DirLinkId> {
        self.next[from.index()][to.index()]
    }

    /// The sequence of directed links on the path `from -> to`.
    ///
    /// `link_to` maps a directed link to its head node. Returns an empty
    /// vector when `from == to`; panics if `to` is unreachable.
    pub fn path(
        &self,
        from: NodeId,
        to: NodeId,
        link_to: impl Fn(DirLinkId) -> NodeId,
    ) -> Vec<DirLinkId> {
        let mut path = Vec::new();
        let mut cur = from;
        while cur != to {
            let l = self.next_hop(cur, to).unwrap_or_else(|| panic!("no route {cur:?} -> {to:?}"));
            path.push(l);
            cur = link_to(l);
            assert!(path.len() <= self.next.len(), "routing loop {from:?} -> {to:?}");
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Chain 0 - 1 - 2 with duplex links (ids: 0:0->1, 1:1->0, 2:1->2, 3:2->1).
    fn chain() -> Routing {
        let links = vec![
            (DirLinkId(0), NodeId(0), NodeId(1)),
            (DirLinkId(1), NodeId(1), NodeId(0)),
            (DirLinkId(2), NodeId(1), NodeId(2)),
            (DirLinkId(3), NodeId(2), NodeId(1)),
        ];
        Routing::build(3, &links)
    }

    #[test]
    fn next_hops_on_chain() {
        let r = chain();
        assert_eq!(r.next_hop(NodeId(0), NodeId(1)), Some(DirLinkId(0)));
        assert_eq!(r.next_hop(NodeId(0), NodeId(2)), Some(DirLinkId(0)));
        assert_eq!(r.next_hop(NodeId(1), NodeId(2)), Some(DirLinkId(2)));
        assert_eq!(r.next_hop(NodeId(2), NodeId(0)), Some(DirLinkId(3)));
        assert_eq!(r.next_hop(NodeId(1), NodeId(1)), None);
    }

    #[test]
    fn path_walks_the_chain() {
        let r = chain();
        let to = |l: DirLinkId| match l.0 {
            0 => NodeId(1),
            1 => NodeId(0),
            2 => NodeId(2),
            3 => NodeId(1),
            _ => unreachable!(),
        };
        assert_eq!(r.path(NodeId(0), NodeId(2), to), vec![DirLinkId(0), DirLinkId(2)]);
        assert_eq!(r.path(NodeId(2), NodeId(2), to), Vec::<DirLinkId>::new());
    }

    #[test]
    fn star_topology_routes_through_hub() {
        // Hub 0 with leaves 1, 2, 3.
        let mut links = Vec::new();
        let mut id = 0;
        for leaf in 1..4u32 {
            links.push((DirLinkId(id), NodeId(0), NodeId(leaf)));
            id += 1;
            links.push((DirLinkId(id), NodeId(leaf), NodeId(0)));
            id += 1;
        }
        let r = Routing::build(4, &links);
        // leaf 1 -> leaf 2 goes via its uplink to the hub.
        assert_eq!(r.next_hop(NodeId(1), NodeId(2)), Some(DirLinkId(1)));
        assert_eq!(r.next_hop(NodeId(0), NodeId(3)), Some(DirLinkId(4)));
    }

    #[test]
    fn unreachable_is_none() {
        // Two disconnected nodes.
        let r = Routing::build(2, &[]);
        assert_eq!(r.next_hop(NodeId(0), NodeId(1)), None);
    }
}
