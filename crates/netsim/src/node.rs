//! Nodes (routers/hosts) and unicast routing.
//!
//! A node is a router that may also host application agents (a media source,
//! a receiver, a controller). Unicast routing is precomputed after the
//! topology is frozen. All evaluation topologies in the paper are trees, so
//! the build detects tree/forest graphs and stores an O(n) interval-labelled
//! routing structure (parent links + Euler tin/tout ranges + a CSR child
//! table); the dense BFS next-hop table is kept as a fallback for arbitrary
//! connected graphs, where shortest-path choice genuinely needs a search.
//! On a tree both representations answer identically because paths are
//! unique — the interval form just avoids the O(n²) memory that made
//! million-node domains impossible to even allocate.

use crate::app::AppId;
use crate::link::DirLinkId;
use std::collections::HashSet;
use std::collections::VecDeque;

/// Index of a node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One router/host.
///
/// Liveness (crashed or not) is *not* stored here: the simulator keeps it in
/// a dense per-network bitmap (`Network::node_up`) because the up-check runs
/// on every packet arrival and every timer, and a bitmap stays cache-resident
/// where an array of `Node` structs (label string, link and app lists) does
/// not.
#[derive(Debug, Default)]
pub struct Node {
    /// Outgoing directed links.
    pub out_links: Vec<DirLinkId>,
    /// Applications hosted here.
    pub apps: Vec<AppId>,
    /// Human-readable label for traces and error messages.
    pub label: String,
}

/// Precomputed unicast routing. `next_hop(from, to)` is the directed link to
/// take at `from` for a packet headed to `to`.
pub struct Routing {
    num_nodes: usize,
    backing: Backing,
}

enum Backing {
    /// Dense N×N next-hop table from all-sources BFS (arbitrary graphs).
    Dense(Vec<Vec<Option<DirLinkId>>>),
    /// O(n) tree/forest routing: go up towards the root unless the
    /// destination's Euler interval nests inside ours, in which case descend
    /// into the unique child subtree containing it.
    Tree(TreeRouting),
}

struct TreeRouting {
    /// Connected-component id per node (forests route `None` across them).
    comp: Vec<u32>,
    /// Directed link towards the parent; `None` at component roots.
    up: Vec<Option<DirLinkId>>,
    /// Euler entry label per node (DFS preorder, unique).
    tin: Vec<u32>,
    /// Largest `tin` in the node's subtree (inclusive).
    tout: Vec<u32>,
    /// CSR offsets into `child_tin`/`child_link`, length `n + 1`.
    child_start: Vec<u32>,
    /// `tin` of each child, ascending within a node (DFS order).
    child_tin: Vec<u32>,
    /// Directed link parent → child, parallel to `child_tin`.
    child_link: Vec<DirLinkId>,
}

impl TreeRouting {
    fn next_hop(&self, from: NodeId, to: NodeId) -> Option<DirLinkId> {
        let (f, t) = (from.index(), to.index());
        if f == t || self.comp[f] != self.comp[t] {
            return None;
        }
        let tt = self.tin[t];
        if self.tin[f] < tt && tt <= self.tout[f] {
            // `to` is in our subtree: descend into the child whose Euler
            // interval contains it. Children are interval-contiguous in DFS
            // order, so it is the last child with `tin <= tt`.
            let (lo, hi) = (self.child_start[f] as usize, self.child_start[f + 1] as usize);
            let kids = &self.child_tin[lo..hi];
            let idx = kids.partition_point(|&k| k <= tt) - 1;
            Some(self.child_link[lo + idx])
        } else {
            // `to` is outside our subtree: the unique path leads through the
            // parent. Roots always hit the descend branch for same-component
            // destinations, so `up` is present here.
            self.up[f]
        }
    }
}

/// Try to interpret `links` as a duplex tree/forest: every directed link has
/// exactly one reverse twin, no parallel edges, and the undirected edge set
/// is acyclic. Returns per-node `(up-link, children)` adjacency on success.
#[allow(clippy::type_complexity)]
fn duplex_forest(
    num_nodes: usize,
    links: &[(DirLinkId, NodeId, NodeId)],
) -> Option<Vec<Vec<(DirLinkId, NodeId)>>> {
    if !links.len().is_multiple_of(2) {
        return None;
    }
    let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(links.len());
    for &(_, from, to) in links {
        if from == to || !seen.insert((from.0, to.0)) {
            return None; // self-loop or parallel edge
        }
    }
    // Every directed link needs its reverse twin.
    for &(_, from, to) in links {
        if !seen.contains(&(to.0, from.0)) {
            return None;
        }
    }
    // Union-find acyclicity over the undirected edges.
    let mut parent: Vec<u32> = (0..num_nodes as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    let mut adj: Vec<Vec<(DirLinkId, NodeId)>> = vec![Vec::new(); num_nodes];
    for &(id, from, to) in links {
        adj[from.index()].push((id, to));
        if from.0 < to.0 {
            let (a, b) = (find(&mut parent, from.0), find(&mut parent, to.0));
            if a == b {
                return None; // cycle
            }
            parent[a as usize] = b;
        }
    }
    Some(adj)
}

impl Routing {
    /// Build from `links`, where each entry is `(id, from, to)` of a directed
    /// link. Trees/forests get the O(n) interval representation; anything
    /// else falls back to the dense all-sources BFS table.
    pub fn build(num_nodes: usize, links: &[(DirLinkId, NodeId, NodeId)]) -> Self {
        if let Some(adj) = duplex_forest(num_nodes, links) {
            return Routing {
                num_nodes,
                backing: Backing::Tree(Self::build_tree(num_nodes, &adj)),
            };
        }
        Routing { num_nodes, backing: Backing::Dense(Self::build_dense(num_nodes, links)) }
    }

    fn build_tree(num_nodes: usize, adj: &[Vec<(DirLinkId, NodeId)>]) -> TreeRouting {
        let mut comp = vec![u32::MAX; num_nodes];
        let mut up = vec![None; num_nodes];
        let mut tin = vec![0u32; num_nodes];
        let mut tout = vec![0u32; num_nodes];
        let mut children: Vec<Vec<(u32, DirLinkId)>> = vec![Vec::new(); num_nodes];
        let mut clock = 0u32;
        let mut ncomp = 0u32;
        // Iterative DFS per component; the component root is the smallest
        // unvisited node id, children are visited in adjacency (= link
        // insertion) order, matching the BFS table's deterministic choice.
        let mut stack: Vec<(usize, usize)> = Vec::new(); // (node, next child idx)
        for root in 0..num_nodes {
            if comp[root] != u32::MAX {
                continue;
            }
            comp[root] = ncomp;
            tin[root] = clock;
            clock += 1;
            stack.push((root, 0));
            while let Some(top) = stack.last_mut() {
                let (n, i) = (top.0, top.1);
                top.1 += 1;
                if i < adj[n].len() {
                    let (l, nb) = adj[n][i];
                    if comp[nb.index()] == u32::MAX {
                        comp[nb.index()] = ncomp;
                        tin[nb.index()] = clock;
                        clock += 1;
                        // The reverse twin exists by construction; find it.
                        let rev = adj[nb.index()]
                            .iter()
                            .find(|&&(_, t)| t.index() == n)
                            .expect("duplex twin")
                            .0;
                        up[nb.index()] = Some(rev);
                        children[n].push((tin[nb.index()], l));
                        stack.push((nb.index(), 0));
                    }
                } else {
                    tout[n] = clock - 1;
                    stack.pop();
                }
            }
            ncomp += 1;
        }
        // Flatten children into CSR (already tin-ascending: DFS order).
        let mut child_start = Vec::with_capacity(num_nodes + 1);
        let mut child_tin = Vec::new();
        let mut child_link = Vec::new();
        child_start.push(0u32);
        for kids in &children {
            for &(t, l) in kids {
                child_tin.push(t);
                child_link.push(l);
            }
            child_start.push(child_tin.len() as u32);
        }
        TreeRouting { comp, up, tin, tout, child_start, child_tin, child_link }
    }

    fn build_dense(
        num_nodes: usize,
        links: &[(DirLinkId, NodeId, NodeId)],
    ) -> Vec<Vec<Option<DirLinkId>>> {
        // Adjacency: for each node, its outgoing (link, neighbor) pairs.
        let mut adj: Vec<Vec<(DirLinkId, NodeId)>> = vec![Vec::new(); num_nodes];
        for &(id, from, to) in links {
            adj[from.index()].push((id, to));
        }
        let mut next = vec![vec![None; num_nodes]; num_nodes];
        // BFS outward from each source; first-found path is shortest (hops).
        for src in 0..num_nodes {
            let mut visited = vec![false; num_nodes];
            visited[src] = true;
            let mut q = VecDeque::new();
            // Seed with each first hop so we can record the originating link.
            for &(l, nb) in &adj[src] {
                if !visited[nb.index()] {
                    visited[nb.index()] = true;
                    next[src][nb.index()] = Some(l);
                    q.push_back(nb);
                }
            }
            while let Some(n) = q.pop_front() {
                let via = next[src][n.index()];
                for &(_, nb) in &adj[n.index()] {
                    if !visited[nb.index()] {
                        visited[nb.index()] = true;
                        next[src][nb.index()] = via;
                        q.push_back(nb);
                    }
                }
            }
        }
        next
    }

    /// Whether the compact tree representation is in use (diagnostics).
    pub fn is_tree(&self) -> bool {
        matches!(self.backing, Backing::Tree(_))
    }

    /// Next directed link at `from` toward `to`, or `None` if unreachable or
    /// already there.
    pub fn next_hop(&self, from: NodeId, to: NodeId) -> Option<DirLinkId> {
        match &self.backing {
            Backing::Dense(next) => next[from.index()][to.index()],
            Backing::Tree(t) => t.next_hop(from, to),
        }
    }

    /// The sequence of directed links on the path `from -> to`.
    ///
    /// `link_to` maps a directed link to its head node. Returns an empty
    /// vector when `from == to`; panics if `to` is unreachable.
    pub fn path(
        &self,
        from: NodeId,
        to: NodeId,
        link_to: impl Fn(DirLinkId) -> NodeId,
    ) -> Vec<DirLinkId> {
        let mut path = Vec::new();
        let mut cur = from;
        while cur != to {
            let l = self.next_hop(cur, to).unwrap_or_else(|| panic!("no route {cur:?} -> {to:?}"));
            path.push(l);
            cur = link_to(l);
            assert!(path.len() <= self.num_nodes, "routing loop {from:?} -> {to:?}");
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Chain 0 - 1 - 2 with duplex links (ids: 0:0->1, 1:1->0, 2:1->2, 3:2->1).
    fn chain() -> Routing {
        let links = vec![
            (DirLinkId(0), NodeId(0), NodeId(1)),
            (DirLinkId(1), NodeId(1), NodeId(0)),
            (DirLinkId(2), NodeId(1), NodeId(2)),
            (DirLinkId(3), NodeId(2), NodeId(1)),
        ];
        Routing::build(3, &links)
    }

    #[test]
    fn next_hops_on_chain() {
        let r = chain();
        assert!(r.is_tree());
        assert_eq!(r.next_hop(NodeId(0), NodeId(1)), Some(DirLinkId(0)));
        assert_eq!(r.next_hop(NodeId(0), NodeId(2)), Some(DirLinkId(0)));
        assert_eq!(r.next_hop(NodeId(1), NodeId(2)), Some(DirLinkId(2)));
        assert_eq!(r.next_hop(NodeId(2), NodeId(0)), Some(DirLinkId(3)));
        assert_eq!(r.next_hop(NodeId(1), NodeId(1)), None);
    }

    #[test]
    fn path_walks_the_chain() {
        let r = chain();
        let to = |l: DirLinkId| match l.0 {
            0 => NodeId(1),
            1 => NodeId(0),
            2 => NodeId(2),
            3 => NodeId(1),
            _ => unreachable!(),
        };
        assert_eq!(r.path(NodeId(0), NodeId(2), to), vec![DirLinkId(0), DirLinkId(2)]);
        assert_eq!(r.path(NodeId(2), NodeId(2), to), Vec::<DirLinkId>::new());
    }

    #[test]
    fn star_topology_routes_through_hub() {
        // Hub 0 with leaves 1, 2, 3.
        let mut links = Vec::new();
        let mut id = 0;
        for leaf in 1..4u32 {
            links.push((DirLinkId(id), NodeId(0), NodeId(leaf)));
            id += 1;
            links.push((DirLinkId(id), NodeId(leaf), NodeId(0)));
            id += 1;
        }
        let r = Routing::build(4, &links);
        assert!(r.is_tree());
        // leaf 1 -> leaf 2 goes via its uplink to the hub.
        assert_eq!(r.next_hop(NodeId(1), NodeId(2)), Some(DirLinkId(1)));
        assert_eq!(r.next_hop(NodeId(0), NodeId(3)), Some(DirLinkId(4)));
    }

    #[test]
    fn unreachable_is_none() {
        // Two disconnected nodes.
        let r = Routing::build(2, &[]);
        assert!(r.is_tree()); // a forest of singletons
        assert_eq!(r.next_hop(NodeId(0), NodeId(1)), None);
    }

    #[test]
    fn forest_routes_within_components_only() {
        // Two separate chains: 0-1 and 2-3.
        let links = vec![
            (DirLinkId(0), NodeId(0), NodeId(1)),
            (DirLinkId(1), NodeId(1), NodeId(0)),
            (DirLinkId(2), NodeId(2), NodeId(3)),
            (DirLinkId(3), NodeId(3), NodeId(2)),
        ];
        let r = Routing::build(4, &links);
        assert!(r.is_tree());
        assert_eq!(r.next_hop(NodeId(0), NodeId(1)), Some(DirLinkId(0)));
        assert_eq!(r.next_hop(NodeId(3), NodeId(2)), Some(DirLinkId(3)));
        assert_eq!(r.next_hop(NodeId(0), NodeId(3)), None);
        assert_eq!(r.next_hop(NodeId(2), NodeId(1)), None);
    }

    #[test]
    fn cyclic_graph_falls_back_to_dense_bfs() {
        // Triangle 0-1-2-0: not a tree, must still route shortest paths.
        let mut links = Vec::new();
        let mut id = 0;
        for (a, b) in [(0u32, 1u32), (1, 2), (2, 0)] {
            links.push((DirLinkId(id), NodeId(a), NodeId(b)));
            id += 1;
            links.push((DirLinkId(id), NodeId(b), NodeId(a)));
            id += 1;
        }
        let r = Routing::build(3, &links);
        assert!(!r.is_tree());
        // One hop everywhere.
        assert_eq!(r.next_hop(NodeId(0), NodeId(1)), Some(DirLinkId(0)));
        assert_eq!(r.next_hop(NodeId(0), NodeId(2)), Some(DirLinkId(5)));
        assert_eq!(r.next_hop(NodeId(2), NodeId(1)), Some(DirLinkId(3)));
    }

    #[test]
    fn unidirectional_link_falls_back_to_dense() {
        // 0 -> 1 with no reverse: tree form can't represent asymmetric
        // reachability, so the dense table must take over.
        let r = Routing::build(2, &[(DirLinkId(0), NodeId(0), NodeId(1))]);
        assert!(!r.is_tree());
        assert_eq!(r.next_hop(NodeId(0), NodeId(1)), Some(DirLinkId(0)));
        assert_eq!(r.next_hop(NodeId(1), NodeId(0)), None);
    }

    /// The interval form and the dense BFS table agree hop-for-hop on random
    /// trees (unique paths make them necessarily equal; this pins the
    /// interval arithmetic).
    #[test]
    fn tree_and_dense_agree_on_random_trees() {
        use crate::rng::RngStream;
        let mut rng = RngStream::derive(0x7EE5, "node/tree-vs-dense");
        for n in [2usize, 3, 7, 17, 40] {
            let mut links = Vec::new();
            let mut id = 0u32;
            for i in 1..n {
                let p = rng.range_u64(0, i as u64) as u32;
                links.push((DirLinkId(id), NodeId(p), NodeId(i as u32)));
                id += 1;
                links.push((DirLinkId(id), NodeId(i as u32), NodeId(p)));
                id += 1;
            }
            let tree = Routing::build(n, &links);
            assert!(tree.is_tree());
            let dense =
                Routing { num_nodes: n, backing: Backing::Dense(Routing::build_dense(n, &links)) };
            for a in 0..n as u32 {
                for b in 0..n as u32 {
                    assert_eq!(
                        tree.next_hop(NodeId(a), NodeId(b)),
                        dense.next_hop(NodeId(a), NodeId(b)),
                        "divergence at {a}->{b} (n={n})"
                    );
                }
            }
        }
    }
}
