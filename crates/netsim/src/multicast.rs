//! IP-multicast-style group membership and distribution-tree maintenance.
//!
//! Each multicast group is rooted at its source node. The distribution tree
//! of a group is the union of the routed paths from the root to every node
//! with at least one subscribed application. Joining grafts the missing
//! links onto the tree after a (small) graft latency; leaving prunes links
//! after the IGMP-style **leave latency** — the delay the paper's §V calls
//! out as a congestion hazard, because a dropped layer keeps flowing (and
//! keeps congesting the bottleneck) until the prune takes effect.
//!
//! Grafts and prunes are *checked against current desire when they fire*:
//! if membership changed again in flight, a stale graft does not activate a
//! link nobody wants, and a stale prune does not cut a link that regained a
//! subscriber.

use crate::app::AppId;
use crate::link::DirLinkId;
use crate::node::{NodeId, Routing};
use crate::time::SimDuration;
use std::collections::{HashMap, HashSet};

/// Index of a multicast group. Layered sessions use one group per layer.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GroupId(pub u32);

/// Latency parameters for multicast state changes.
#[derive(Clone, Copy, Debug)]
pub struct MulticastConfig {
    /// Delay from a join until the grafted links carry traffic.
    pub graft_latency: SimDuration,
    /// Delay from the last local leave until pruned links stop carrying
    /// traffic (IGMP group-leave latency).
    pub leave_latency: SimDuration,
}

impl Default for MulticastConfig {
    fn default() -> Self {
        MulticastConfig {
            graft_latency: SimDuration::from_millis(50),
            leave_latency: SimDuration::from_millis(500),
        }
    }
}

/// A graft/prune the caller must schedule as a future event.
#[derive(Debug, PartialEq, Eq)]
pub enum TreeOp {
    Graft { group: GroupId, link: DirLinkId, after: SimDuration },
    Prune { group: GroupId, link: DirLinkId, after: SimDuration },
}

#[derive(Default)]
struct GroupState {
    root: NodeId,
    /// Subscribed apps per node (node-level membership is the count > 0).
    members: HashMap<NodeId, HashSet<AppId>>,
    /// Links currently carrying the group.
    active: HashSet<DirLinkId>,
    /// Outgoing active links per node (forwarding fast path).
    active_out: HashMap<NodeId, Vec<DirLinkId>>,
    /// Grafts in flight.
    pending_graft: HashSet<DirLinkId>,
    /// Prunes in flight.
    pending_prune: HashSet<DirLinkId>,
}

/// All multicast state of the network.
pub struct MulticastState {
    cfg: MulticastConfig,
    groups: Vec<GroupState>,
}

impl MulticastState {
    pub fn new(cfg: MulticastConfig) -> Self {
        MulticastState { cfg, groups: Vec::new() }
    }

    /// Register a new group rooted at `root`. Layered sources create one
    /// group per layer, all rooted at the source's node.
    pub fn create_group(&mut self, root: NodeId) -> GroupId {
        let id = GroupId(self.groups.len() as u32);
        self.groups.push(GroupState { root, ..GroupState::default() });
        id
    }

    /// Number of registered groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The root (source node) of a group.
    pub fn root(&self, group: GroupId) -> NodeId {
        self.groups[group.0 as usize].root
    }

    /// Iterate over apps subscribed to `group` at `node`.
    pub fn subscribers_at(&self, group: GroupId, node: NodeId) -> impl Iterator<Item = AppId> + '_ {
        self.groups[group.0 as usize].members.get(&node).into_iter().flat_map(|s| s.iter().copied())
    }

    /// Whether `app` at `node` is subscribed to `group`.
    pub fn is_subscribed(&self, group: GroupId, node: NodeId, app: AppId) -> bool {
        self.groups[group.0 as usize].members.get(&node).is_some_and(|s| s.contains(&app))
    }

    /// Active outgoing links for `group` at `node`.
    pub fn active_out(&self, group: GroupId, node: NodeId) -> &[DirLinkId] {
        self.groups[group.0 as usize].active_out.get(&node).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Whether a directed link currently carries `group`.
    pub fn is_active(&self, group: GroupId, link: DirLinkId) -> bool {
        self.groups[group.0 as usize].active.contains(&link)
    }

    /// The set of links that *should* carry the group given current
    /// membership: the union of routed paths root -> member-node.
    fn desired_links(
        g: &GroupState,
        routing: &Routing,
        link_to: &impl Fn(DirLinkId) -> NodeId,
    ) -> HashSet<DirLinkId> {
        let mut desired = HashSet::new();
        for (&node, apps) in &g.members {
            if apps.is_empty() || node == g.root {
                continue;
            }
            for l in routing.path(g.root, node, link_to) {
                desired.insert(l);
            }
        }
        desired
    }

    /// Subscribe `app` at `node` to `group`. Returns the tree operations the
    /// simulator must schedule.
    pub fn join(
        &mut self,
        group: GroupId,
        node: NodeId,
        app: AppId,
        routing: &Routing,
        link_to: impl Fn(DirLinkId) -> NodeId,
    ) -> Vec<TreeOp> {
        let graft_latency = self.cfg.graft_latency;
        let g = &mut self.groups[group.0 as usize];
        g.members.entry(node).or_default().insert(app);
        let mut desired: Vec<DirLinkId> =
            Self::desired_links(g, routing, &link_to).into_iter().collect();
        // Sorted so the scheduled event order is independent of hash-map
        // iteration order (determinism).
        desired.sort_unstable();
        let mut ops = Vec::new();
        for l in desired {
            // A link desired again cancels its pending prune logically: the
            // prune re-checks desire when it fires. Only schedule a graft for
            // links that are neither active nor already being grafted.
            if !g.active.contains(&l) && !g.pending_graft.contains(&l) {
                g.pending_graft.insert(l);
                ops.push(TreeOp::Graft { group, link: l, after: graft_latency });
            }
        }
        ops
    }

    /// Unsubscribe `app` at `node` from `group`.
    pub fn leave(
        &mut self,
        group: GroupId,
        node: NodeId,
        app: AppId,
        routing: &Routing,
        link_to: impl Fn(DirLinkId) -> NodeId,
    ) -> Vec<TreeOp> {
        let leave_latency = self.cfg.leave_latency;
        let g = &mut self.groups[group.0 as usize];
        if let Some(apps) = g.members.get_mut(&node) {
            apps.remove(&app);
            if apps.is_empty() {
                g.members.remove(&node);
            }
        }
        let desired = Self::desired_links(g, routing, &link_to);
        let mut active: Vec<DirLinkId> = g.active.iter().copied().collect();
        active.sort_unstable();
        let mut ops = Vec::new();
        for l in active {
            if !desired.contains(&l) && !g.pending_prune.contains(&l) {
                g.pending_prune.insert(l);
                ops.push(TreeOp::Prune { group, link: l, after: leave_latency });
            }
        }
        ops
    }

    /// A graft completed. Activates the link iff it is still desired.
    pub fn graft_done(
        &mut self,
        group: GroupId,
        link: DirLinkId,
        link_from: NodeId,
        routing: &Routing,
        link_to: impl Fn(DirLinkId) -> NodeId,
    ) {
        let g = &mut self.groups[group.0 as usize];
        g.pending_graft.remove(&link);
        let desired = Self::desired_links(g, routing, &link_to);
        if desired.contains(&link) && g.active.insert(link) {
            g.active_out.entry(link_from).or_default().push(link);
        }
    }

    /// A graft could not take effect (an endpoint was down when it fired).
    /// The pending marker is cleared so a later join can retry the graft.
    pub fn graft_failed(&mut self, group: GroupId, link: DirLinkId) {
        self.groups[group.0 as usize].pending_graft.remove(&link);
    }

    /// A router crashed: it loses all multicast forwarding state. Every
    /// group's active links *out of* the node are deactivated (it forwards
    /// nothing any more) and local membership is wiped (its apps are dead).
    /// Links *into* the node stay active — upstream routers have no way to
    /// know and keep forwarding into the blackhole until the protocol
    /// repairs the tree (receivers re-join, which re-grafts).
    pub fn node_crashed(&mut self, node: NodeId) {
        for g in &mut self.groups {
            if let Some(out) = g.active_out.remove(&node) {
                for l in out {
                    g.active.remove(&l);
                }
            }
            g.members.remove(&node);
        }
    }

    /// A prune completed. Deactivates the link iff it is still undesired.
    pub fn prune_done(
        &mut self,
        group: GroupId,
        link: DirLinkId,
        link_from: NodeId,
        routing: &Routing,
        link_to: impl Fn(DirLinkId) -> NodeId,
    ) {
        let g = &mut self.groups[group.0 as usize];
        g.pending_prune.remove(&link);
        let desired = Self::desired_links(g, routing, &link_to);
        if !desired.contains(&link) && g.active.remove(&link) {
            if let Some(v) = g.active_out.get_mut(&link_from) {
                v.retain(|&x| x != link);
            }
        }
    }

    /// Ground-truth snapshot: for each group, the set of active links and
    /// member nodes. The topology-discovery tool reads this (possibly with
    /// staleness added by the `topology` crate).
    pub fn snapshot(&self) -> Vec<GroupSnapshot> {
        self.groups
            .iter()
            .enumerate()
            .map(|(i, g)| GroupSnapshot {
                group: GroupId(i as u32),
                root: g.root,
                active_links: {
                    let mut v: Vec<DirLinkId> = g.active.iter().copied().collect();
                    v.sort_unstable();
                    v
                },
                member_nodes: {
                    let mut v: Vec<NodeId> = g.members.keys().copied().collect();
                    v.sort_unstable();
                    v
                },
            })
            .collect()
    }
}

/// Point-in-time view of one group's distribution tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupSnapshot {
    pub group: GroupId,
    pub root: NodeId,
    pub active_links: Vec<DirLinkId>,
    pub member_nodes: Vec<NodeId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Routing;

    /// Chain 0 - 1 - 2; link ids: 0:0->1, 1:1->0, 2:1->2, 3:2->1.
    fn setup() -> (MulticastState, Routing, impl Fn(DirLinkId) -> NodeId + Copy) {
        let links = vec![
            (DirLinkId(0), NodeId(0), NodeId(1)),
            (DirLinkId(1), NodeId(1), NodeId(0)),
            (DirLinkId(2), NodeId(1), NodeId(2)),
            (DirLinkId(3), NodeId(2), NodeId(1)),
        ];
        let routing = Routing::build(3, &links);
        let link_to = |l: DirLinkId| match l.0 {
            0 => NodeId(1),
            1 => NodeId(0),
            2 => NodeId(2),
            3 => NodeId(1),
            _ => unreachable!(),
        };
        (MulticastState::new(MulticastConfig::default()), routing, link_to)
    }

    #[test]
    fn join_grafts_path_from_root() {
        let (mut m, r, to) = setup();
        let g = m.create_group(NodeId(0));
        let ops = m.join(g, NodeId(2), AppId(5), &r, to);
        // Path 0->2 is links 0 and 2.
        assert_eq!(ops.len(), 2);
        assert!(ops.iter().all(|op| matches!(op, TreeOp::Graft { .. })));
        // Not active until grafts complete.
        assert!(!m.is_active(g, DirLinkId(0)));
        m.graft_done(g, DirLinkId(0), NodeId(0), &r, to);
        m.graft_done(g, DirLinkId(2), NodeId(1), &r, to);
        assert!(m.is_active(g, DirLinkId(0)));
        assert!(m.is_active(g, DirLinkId(2)));
        assert_eq!(m.active_out(g, NodeId(0)), &[DirLinkId(0)]);
        assert_eq!(m.active_out(g, NodeId(1)), &[DirLinkId(2)]);
    }

    #[test]
    fn leave_prunes_unneeded_links_only() {
        let (mut m, r, to) = setup();
        let g = m.create_group(NodeId(0));
        // Members at both node 1 and node 2.
        for op in m.join(g, NodeId(1), AppId(1), &r, to) {
            if let TreeOp::Graft { link, .. } = op {
                m.graft_done(g, link, NodeId(0), &r, to);
            }
        }
        for op in m.join(g, NodeId(2), AppId(2), &r, to) {
            if let TreeOp::Graft { link, .. } = op {
                m.graft_done(g, link, NodeId(1), &r, to);
            }
        }
        // Node 2 leaves: only link 1->2 should be pruned.
        let ops = m.leave(g, NodeId(2), AppId(2), &r, to);
        assert_eq!(ops.len(), 1);
        match &ops[0] {
            TreeOp::Prune { link, .. } => assert_eq!(*link, DirLinkId(2)),
            other => panic!("expected prune, got {other:?}"),
        }
        m.prune_done(g, DirLinkId(2), NodeId(1), &r, to);
        assert!(!m.is_active(g, DirLinkId(2)));
        assert!(m.is_active(g, DirLinkId(0)));
    }

    #[test]
    fn rejoin_during_prune_keeps_link() {
        let (mut m, r, to) = setup();
        let g = m.create_group(NodeId(0));
        for op in m.join(g, NodeId(2), AppId(2), &r, to) {
            if let TreeOp::Graft { link, .. } = op {
                let from = if link == DirLinkId(0) { NodeId(0) } else { NodeId(1) };
                m.graft_done(g, link, from, &r, to);
            }
        }
        let ops = m.leave(g, NodeId(2), AppId(2), &r, to);
        assert_eq!(ops.len(), 2); // both links pruned
                                  // Rejoin before prune fires.
        let grafts = m.join(g, NodeId(2), AppId(2), &r, to);
        // Links are still active, so no new grafts needed.
        assert!(grafts.is_empty());
        // The stale prunes fire and must be ignored.
        m.prune_done(g, DirLinkId(0), NodeId(0), &r, to);
        m.prune_done(g, DirLinkId(2), NodeId(1), &r, to);
        assert!(m.is_active(g, DirLinkId(0)));
        assert!(m.is_active(g, DirLinkId(2)));
    }

    #[test]
    fn leave_during_graft_suppresses_activation() {
        let (mut m, r, to) = setup();
        let g = m.create_group(NodeId(0));
        let _ = m.join(g, NodeId(2), AppId(2), &r, to);
        let _ = m.leave(g, NodeId(2), AppId(2), &r, to);
        // Graft fires after the member already left: must not activate.
        m.graft_done(g, DirLinkId(0), NodeId(0), &r, to);
        m.graft_done(g, DirLinkId(2), NodeId(1), &r, to);
        assert!(!m.is_active(g, DirLinkId(0)));
        assert!(!m.is_active(g, DirLinkId(2)));
    }

    #[test]
    fn two_apps_same_node_count_as_one_membership() {
        let (mut m, r, to) = setup();
        let g = m.create_group(NodeId(0));
        let ops1 = m.join(g, NodeId(2), AppId(1), &r, to);
        assert_eq!(ops1.len(), 2);
        for op in ops1 {
            if let TreeOp::Graft { link, .. } = op {
                let from = if link == DirLinkId(0) { NodeId(0) } else { NodeId(1) };
                m.graft_done(g, link, from, &r, to);
            }
        }
        // Second app at the same node: no new grafts.
        assert!(m.join(g, NodeId(2), AppId(2), &r, to).is_empty());
        // First app leaves: node still a member, nothing pruned.
        assert!(m.leave(g, NodeId(2), AppId(1), &r, to).is_empty());
        // Last app leaves: prunes scheduled.
        assert_eq!(m.leave(g, NodeId(2), AppId(2), &r, to).len(), 2);
    }

    #[test]
    fn member_at_root_needs_no_links() {
        let (mut m, r, to) = setup();
        let g = m.create_group(NodeId(0));
        assert!(m.join(g, NodeId(0), AppId(9), &r, to).is_empty());
        assert!(m.is_subscribed(g, NodeId(0), AppId(9)));
        let subs: Vec<AppId> = m.subscribers_at(g, NodeId(0)).collect();
        assert_eq!(subs, vec![AppId(9)]);
    }

    #[test]
    fn node_crash_deactivates_outgoing_links_and_membership() {
        let (mut m, r, to) = setup();
        let g = m.create_group(NodeId(0));
        for op in m.join(g, NodeId(2), AppId(2), &r, to) {
            if let TreeOp::Graft { link, .. } = op {
                let from = if link == DirLinkId(0) { NodeId(0) } else { NodeId(1) };
                m.graft_done(g, link, from, &r, to);
            }
        }
        // Node 1 (mid-router) crashes: its out-link 1->2 deactivates, but
        // the upstream 0->1 link keeps blindly carrying the group.
        m.node_crashed(NodeId(1));
        assert!(m.is_active(g, DirLinkId(0)));
        assert!(!m.is_active(g, DirLinkId(2)));
        assert!(m.active_out(g, NodeId(1)).is_empty());
        // The downstream member survives in the member list (its node did
        // not crash) so a re-join can re-graft the lost link.
        let ops = m.join(g, NodeId(2), AppId(2), &r, to);
        assert_eq!(ops.len(), 1);
        match &ops[0] {
            TreeOp::Graft { link, .. } => assert_eq!(*link, DirLinkId(2)),
            other => panic!("expected graft, got {other:?}"),
        }
    }

    #[test]
    fn failed_graft_can_be_retried() {
        let (mut m, r, to) = setup();
        let g = m.create_group(NodeId(0));
        let ops = m.join(g, NodeId(2), AppId(2), &r, to);
        assert_eq!(ops.len(), 2);
        // Both grafts fail (say, the mid-router was down when they fired).
        m.graft_failed(g, DirLinkId(0));
        m.graft_failed(g, DirLinkId(2));
        assert!(!m.is_active(g, DirLinkId(0)));
        // A later join retries both grafts.
        let retry = m.join(g, NodeId(2), AppId(2), &r, to);
        assert_eq!(retry.len(), 2);
    }

    #[test]
    fn snapshot_reports_sorted_state() {
        let (mut m, r, to) = setup();
        let g = m.create_group(NodeId(0));
        for op in m.join(g, NodeId(2), AppId(2), &r, to) {
            if let TreeOp::Graft { link, .. } = op {
                let from = if link == DirLinkId(0) { NodeId(0) } else { NodeId(1) };
                m.graft_done(g, link, from, &r, to);
            }
        }
        let snap = m.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].root, NodeId(0));
        assert_eq!(snap[0].active_links, vec![DirLinkId(0), DirLinkId(2)]);
        assert_eq!(snap[0].member_nodes, vec![NodeId(2)]);
    }
}
