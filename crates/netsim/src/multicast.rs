//! IP-multicast-style group membership and distribution-tree maintenance.
//!
//! Each multicast group is rooted at its source node. The distribution tree
//! of a group is the union of the routed paths from the root to every node
//! with at least one subscribed application. Joining grafts the missing
//! links onto the tree after a (small) graft latency; leaving prunes links
//! after the IGMP-style **leave latency** — the delay the paper's §V calls
//! out as a congestion hazard, because a dropped layer keeps flowing (and
//! keeps congesting the bottleneck) until the prune takes effect.
//!
//! Grafts and prunes are *checked against current desire when they fire*:
//! if membership changed again in flight, a stale graft does not activate a
//! link nobody wants, and a stale prune does not cut a link that regained a
//! subscriber.
//!
//! Hot state is structure-of-arrays over dense `u32` ids: per-link bitmaps
//! for active/pending-graft/pending-prune (one bit per directed link, so a
//! 2M-link federation costs 256 KiB per group instead of hash tables of
//! 8-byte entries), a dense refcount vector for desire, and per-node
//! active-out adjacency. Join/leave walk only the member's root path —
//! O(depth) — instead of scanning every link; `join_batch` coalesces a
//! flash crowd into one membership pass plus one deduplicated graft sweep.

use crate::app::AppId;
use crate::link::DirLinkId;
use crate::node::{NodeId, Routing};
use crate::time::SimDuration;

/// Index of a multicast group. Layered sessions use one group per layer.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GroupId(pub u32);

/// Latency parameters for multicast state changes.
#[derive(Clone, Copy, Debug)]
pub struct MulticastConfig {
    /// Delay from a join until the grafted links carry traffic.
    pub graft_latency: SimDuration,
    /// Delay from the last local leave until pruned links stop carrying
    /// traffic (IGMP group-leave latency).
    pub leave_latency: SimDuration,
}

impl Default for MulticastConfig {
    fn default() -> Self {
        MulticastConfig {
            graft_latency: SimDuration::from_millis(50),
            leave_latency: SimDuration::from_millis(500),
        }
    }
}

/// A graft/prune the caller must schedule as a future event.
#[derive(Debug, PartialEq, Eq)]
pub enum TreeOp {
    Graft { group: GroupId, link: DirLinkId, after: SimDuration },
    Prune { group: GroupId, link: DirLinkId, after: SimDuration },
}

struct GroupState {
    root: NodeId,
    /// Subscribed apps per node, indexed densely by node id and kept
    /// **sorted** (node-level membership is the count > 0). Sorted storage
    /// makes the per-arrival delivery path a plain slice borrow — no
    /// per-packet collect-and-sort, and no hashing on the hot path.
    members: Vec<Vec<AppId>>,
    /// One bit per node, set iff `members[node]` is non-empty. The bitmap is
    /// L1-resident even on 100k-node domains, so the per-arrival membership
    /// probe at the (common) non-member router never touches the dense
    /// members table.
    member_bits: Vec<u64>,
    /// Nodes with at least one subscriber, sorted — the tree-maintenance
    /// walks (desired-link recomputation, snapshots) iterate this instead of
    /// scanning every node.
    member_nodes: Vec<NodeId>,
    /// One bit per directed link, set iff the link currently carries the
    /// group.
    active_bits: Vec<u64>,
    /// Refcounted desired-link set, dense by directed-link id: how many
    /// current members' root-paths traverse each link. Maintained
    /// incrementally on join/leave/crash (routing is static, so a member's
    /// path never changes while it is subscribed), which makes the
    /// desire check at graft/prune completion O(1) instead of a re-walk of
    /// every member's path — the walk made large-domain tree setup
    /// O(links × members × depth).
    desired_refs: Vec<u32>,
    /// Outgoing active links per node, indexed densely by node id — the
    /// forwarding fast path reads this on every multicast hop.
    active_out: Vec<Vec<DirLinkId>>,
    /// One bit per node, set iff `active_out[node]` is non-empty; lets the
    /// fan-out probe at leaf routers skip the table load entirely.
    active_out_bits: Vec<u64>,
    /// One bit per directed link: graft in flight.
    graft_bits: Vec<u64>,
    /// One bit per directed link: prune in flight.
    prune_bits: Vec<u64>,
}

#[inline]
fn bit_get(bits: &[u64], i: usize) -> bool {
    bits[i >> 6] & (1 << (i & 63)) != 0
}

#[inline]
fn bit_set(bits: &mut [u64], i: usize) {
    bits[i >> 6] |= 1 << (i & 63);
}

#[inline]
fn bit_clear(bits: &mut [u64], i: usize) {
    bits[i >> 6] &= !(1 << (i & 63));
}

/// Indices of all set bits, ascending.
fn bit_indices(bits: &[u64]) -> impl Iterator<Item = usize> + '_ {
    bits.iter().enumerate().flat_map(|(w, &word)| {
        let mut rest = word;
        std::iter::from_fn(move || {
            if rest == 0 {
                return None;
            }
            let b = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            Some((w << 6) | b)
        })
    })
}

impl GroupState {
    /// Root path of `node`, ascending by link id (the deterministic order
    /// every graft/prune emission uses).
    fn sorted_path(
        &self,
        node: NodeId,
        routing: &Routing,
        link_to: &impl Fn(DirLinkId) -> NodeId,
    ) -> Vec<DirLinkId> {
        if node == self.root {
            return Vec::new();
        }
        let mut path = routing.path(self.root, node, link_to);
        path.sort_unstable();
        path
    }
}

/// All multicast state of the network.
pub struct MulticastState {
    cfg: MulticastConfig,
    groups: Vec<GroupState>,
    num_nodes: usize,
    num_links: usize,
}

impl MulticastState {
    pub fn new(cfg: MulticastConfig, num_nodes: usize, num_links: usize) -> Self {
        MulticastState { cfg, groups: Vec::new(), num_nodes, num_links }
    }

    /// Register a new group rooted at `root`. Layered sources create one
    /// group per layer, all rooted at the source's node.
    pub fn create_group(&mut self, root: NodeId) -> GroupId {
        let id = GroupId(self.groups.len() as u32);
        let words = self.num_nodes.div_ceil(64).max(1);
        let link_words = self.num_links.div_ceil(64).max(1);
        self.groups.push(GroupState {
            root,
            members: vec![Vec::new(); self.num_nodes],
            member_bits: vec![0; words],
            member_nodes: Vec::new(),
            active_bits: vec![0; link_words],
            desired_refs: vec![0; self.num_links],
            active_out: vec![Vec::new(); self.num_nodes],
            active_out_bits: vec![0; words],
            graft_bits: vec![0; link_words],
            prune_bits: vec![0; link_words],
        });
        id
    }

    /// Number of registered groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The root (source node) of a group.
    pub fn root(&self, group: GroupId) -> NodeId {
        self.groups[group.0 as usize].root
    }

    /// Apps subscribed to `group` at `node`, in ascending id order.
    pub fn subscribers_at(&self, group: GroupId, node: NodeId) -> &[AppId] {
        let g = &self.groups[group.0 as usize];
        if !bit_get(&g.member_bits, node.index()) {
            return &[];
        }
        &g.members[node.index()]
    }

    /// Whether `app` at `node` is subscribed to `group`.
    pub fn is_subscribed(&self, group: GroupId, node: NodeId, app: AppId) -> bool {
        let g = &self.groups[group.0 as usize];
        bit_get(&g.member_bits, node.index()) && g.members[node.index()].binary_search(&app).is_ok()
    }

    /// Active outgoing links for `group` at `node`.
    pub fn active_out(&self, group: GroupId, node: NodeId) -> &[DirLinkId] {
        let g = &self.groups[group.0 as usize];
        if !bit_get(&g.active_out_bits, node.index()) {
            return &[];
        }
        &g.active_out[node.index()]
    }

    /// Whether a directed link currently carries `group`.
    pub fn is_active(&self, group: GroupId, link: DirLinkId) -> bool {
        bit_get(&self.groups[group.0 as usize].active_bits, link.0 as usize)
    }

    /// Record membership for one `(node, app)` pair; returns the sorted root
    /// path, with desire refcounts bumped if the node is newly a member.
    fn join_membership(
        g: &mut GroupState,
        node: NodeId,
        app: AppId,
        routing: &Routing,
        link_to: &impl Fn(DirLinkId) -> NodeId,
    ) -> Vec<DirLinkId> {
        let apps = &mut g.members[node.index()];
        let was_member = !apps.is_empty();
        if !was_member {
            bit_set(&mut g.member_bits, node.index());
            if let Err(pos) = g.member_nodes.binary_search(&node) {
                g.member_nodes.insert(pos, node);
            }
        }
        if let Err(pos) = apps.binary_search(&app) {
            apps.insert(pos, app);
        }
        let path = g.sorted_path(node, routing, link_to);
        if !was_member {
            for &l in &path {
                g.desired_refs[l.0 as usize] += 1;
            }
        }
        path
    }

    /// Emit grafts for every link in `links` (sorted, deduplicated) that is
    /// desired but neither active nor already being grafted. This is where a
    /// retry of a previously failed graft on the member's own path happens.
    fn graft_missing(&mut self, group: GroupId, links: &[DirLinkId], ops: &mut Vec<TreeOp>) {
        let graft_latency = self.cfg.graft_latency;
        let g = &mut self.groups[group.0 as usize];
        for &l in links {
            let i = l.0 as usize;
            if g.desired_refs[i] > 0 && !bit_get(&g.active_bits, i) && !bit_get(&g.graft_bits, i) {
                bit_set(&mut g.graft_bits, i);
                ops.push(TreeOp::Graft { group, link: l, after: graft_latency });
            }
        }
    }

    /// Subscribe `app` at `node` to `group`. Returns the tree operations the
    /// simulator must schedule. Only the member's own root path is examined
    /// — O(depth), not O(links) — so a stale failed graft elsewhere in the
    /// tree is retried by *its* subtree's next join, not by every join.
    pub fn join(
        &mut self,
        group: GroupId,
        node: NodeId,
        app: AppId,
        routing: &Routing,
        link_to: impl Fn(DirLinkId) -> NodeId,
    ) -> Vec<TreeOp> {
        let g = &mut self.groups[group.0 as usize];
        let path = Self::join_membership(g, node, app, routing, &link_to);
        let mut ops = Vec::new();
        self.graft_missing(group, &path, &mut ops);
        ops
    }

    /// Subscribe a whole batch of `(node, app)` pairs at once — the flash
    /// crowd path. Membership and desire refcounts are applied for every
    /// member first, then one deduplicated sweep over the union of touched
    /// paths emits each needed graft exactly once (per-event joins would
    /// re-check shared ancestor links once per member).
    pub fn join_batch(
        &mut self,
        group: GroupId,
        members: &[(NodeId, AppId)],
        routing: &Routing,
        link_to: impl Fn(DirLinkId) -> NodeId,
    ) -> Vec<TreeOp> {
        let g = &mut self.groups[group.0 as usize];
        let mut touched: Vec<DirLinkId> = Vec::new();
        for &(node, app) in members {
            touched.extend(Self::join_membership(g, node, app, routing, &link_to));
        }
        touched.sort_unstable();
        touched.dedup();
        let mut ops = Vec::new();
        self.graft_missing(group, &touched, &mut ops);
        ops
    }

    /// Unsubscribe `app` at `node` from `group`. Examines only the member's
    /// own root path for links whose desire dropped to zero.
    pub fn leave(
        &mut self,
        group: GroupId,
        node: NodeId,
        app: AppId,
        routing: &Routing,
        link_to: impl Fn(DirLinkId) -> NodeId,
    ) -> Vec<TreeOp> {
        let leave_latency = self.cfg.leave_latency;
        let g = &mut self.groups[group.0 as usize];
        let apps = &mut g.members[node.index()];
        let was_member = !apps.is_empty();
        if let Ok(pos) = apps.binary_search(&app) {
            apps.remove(pos);
        }
        let now_empty = was_member && apps.is_empty();
        if now_empty {
            bit_clear(&mut g.member_bits, node.index());
            if let Ok(pos) = g.member_nodes.binary_search(&node) {
                g.member_nodes.remove(pos);
            }
        }
        let path = g.sorted_path(node, routing, &link_to);
        let mut ops = Vec::new();
        for &l in &path {
            let i = l.0 as usize;
            if now_empty {
                let refs = &mut g.desired_refs[i];
                debug_assert!(*refs > 0, "desired refcount underflow on {l:?}");
                *refs -= 1;
            }
            if g.desired_refs[i] == 0 && bit_get(&g.active_bits, i) && !bit_get(&g.prune_bits, i) {
                bit_set(&mut g.prune_bits, i);
                ops.push(TreeOp::Prune { group, link: l, after: leave_latency });
            }
        }
        ops
    }

    /// A graft completed. Activates the link iff it is still desired.
    pub fn graft_done(&mut self, group: GroupId, link: DirLinkId, link_from: NodeId) {
        let g = &mut self.groups[group.0 as usize];
        let i = link.0 as usize;
        bit_clear(&mut g.graft_bits, i);
        if g.desired_refs[i] > 0 && !bit_get(&g.active_bits, i) {
            bit_set(&mut g.active_bits, i);
            g.active_out[link_from.index()].push(link);
            bit_set(&mut g.active_out_bits, link_from.index());
        }
    }

    /// A graft could not take effect (an endpoint was down when it fired).
    /// The pending marker is cleared so a later join can retry the graft.
    pub fn graft_failed(&mut self, group: GroupId, link: DirLinkId) {
        bit_clear(&mut self.groups[group.0 as usize].graft_bits, link.0 as usize);
    }

    /// A router crashed: it loses all multicast forwarding state. Every
    /// group's active links *out of* the node are deactivated (it forwards
    /// nothing any more) and local membership is wiped (its apps are dead).
    /// Links *into* the node stay active — upstream routers have no way to
    /// know and keep forwarding into the blackhole until the protocol
    /// repairs the tree (receivers re-join, which re-grafts).
    pub fn node_crashed(
        &mut self,
        node: NodeId,
        routing: &Routing,
        link_to: impl Fn(DirLinkId) -> NodeId,
    ) {
        for g in &mut self.groups {
            for l in std::mem::take(&mut g.active_out[node.index()]) {
                bit_clear(&mut g.active_bits, l.0 as usize);
            }
            bit_clear(&mut g.active_out_bits, node.index());
            if !g.members[node.index()].is_empty() {
                g.members[node.index()].clear();
                if let Ok(pos) = g.member_nodes.binary_search(&node) {
                    g.member_nodes.remove(pos);
                }
                if node != g.root {
                    for l in routing.path(g.root, node, &link_to) {
                        let refs = &mut g.desired_refs[l.0 as usize];
                        debug_assert!(*refs > 0, "desired refcount underflow on {l:?}");
                        *refs -= 1;
                    }
                }
            }
            bit_clear(&mut g.member_bits, node.index());
        }
    }

    /// A prune completed. Deactivates the link iff it is still undesired.
    pub fn prune_done(&mut self, group: GroupId, link: DirLinkId, link_from: NodeId) {
        let g = &mut self.groups[group.0 as usize];
        let i = link.0 as usize;
        bit_clear(&mut g.prune_bits, i);
        if g.desired_refs[i] == 0 && bit_get(&g.active_bits, i) {
            bit_clear(&mut g.active_bits, i);
            let outs = &mut g.active_out[link_from.index()];
            outs.retain(|&x| x != link);
            if outs.is_empty() {
                bit_clear(&mut g.active_out_bits, link_from.index());
            }
        }
    }

    /// Ground-truth snapshot: for each group, the set of active links and
    /// member nodes. The topology-discovery tool reads this (possibly with
    /// staleness added by the `topology` crate).
    pub fn snapshot(&self) -> Vec<GroupSnapshot> {
        self.groups
            .iter()
            .enumerate()
            .map(|(i, g)| GroupSnapshot {
                group: GroupId(i as u32),
                root: g.root,
                active_links: bit_indices(&g.active_bits).map(|i| DirLinkId(i as u32)).collect(),
                member_nodes: g.member_nodes.clone(),
            })
            .collect()
    }

    /// Cross-check every SoA view against the others — bitmaps vs sorted
    /// vectors vs refcounts. O(members × depth + links/64) per group; meant
    /// for tests and post-run harness assertions, not the hot path. Returns
    /// the first inconsistency found.
    pub fn audit(
        &self,
        routing: &Routing,
        link_to: impl Fn(DirLinkId) -> NodeId,
    ) -> Result<(), String> {
        for (gi, g) in self.groups.iter().enumerate() {
            // Membership: bitmap ⇔ non-empty sorted app vector ⇔ member_nodes.
            let mut expect_nodes = Vec::new();
            for n in 0..self.num_nodes {
                let apps = &g.members[n];
                if !apps.windows(2).all(|w| w[0] < w[1]) {
                    return Err(format!("group {gi}: members[{n}] not strictly sorted"));
                }
                if bit_get(&g.member_bits, n) == apps.is_empty() {
                    return Err(format!("group {gi}: member bit mismatch at node {n}"));
                }
                if !apps.is_empty() {
                    expect_nodes.push(NodeId(n as u32));
                }
            }
            if g.member_nodes != expect_nodes {
                return Err(format!("group {gi}: member_nodes diverges from members table"));
            }
            // Desire: refcounts must equal a fresh recount of member paths.
            let mut refs = vec![0u32; self.num_links];
            for &n in &g.member_nodes {
                if n != g.root {
                    for l in routing.path(g.root, n, &link_to) {
                        refs[l.0 as usize] += 1;
                    }
                }
            }
            if refs != g.desired_refs {
                return Err(format!("group {gi}: desired_refs diverges from member paths"));
            }
            // Active set: each active_out entry is unique, has its active
            // bit set, and every active bit is owned by exactly one node
            // (counts match ⇒ bijection).
            let mut out_total = 0usize;
            for n in 0..self.num_nodes {
                let outs = &g.active_out[n];
                if bit_get(&g.active_out_bits, n) == outs.is_empty() {
                    return Err(format!("group {gi}: active_out bit mismatch at node {n}"));
                }
                for (i, &l) in outs.iter().enumerate() {
                    if outs[..i].contains(&l) {
                        return Err(format!("group {gi}: duplicate active_out {l:?} at {n}"));
                    }
                    if !bit_get(&g.active_bits, l.0 as usize) {
                        return Err(format!("group {gi}: active_out {l:?} not in active bitmap"));
                    }
                }
                out_total += outs.len();
            }
            if out_total != bit_indices(&g.active_bits).count() {
                return Err(format!("group {gi}: active bitmap count != active_out total"));
            }
            // A link being grafted is by construction not active yet.
            for (w, (&gb, &ab)) in g.graft_bits.iter().zip(&g.active_bits).enumerate() {
                if gb & ab != 0 {
                    return Err(format!("group {gi}: graft pending on active link (word {w})"));
                }
            }
        }
        Ok(())
    }
}

/// Point-in-time view of one group's distribution tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupSnapshot {
    pub group: GroupId,
    pub root: NodeId,
    pub active_links: Vec<DirLinkId>,
    pub member_nodes: Vec<NodeId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Routing;

    /// Chain 0 - 1 - 2; link ids: 0:0->1, 1:1->0, 2:1->2, 3:2->1.
    fn setup() -> (MulticastState, Routing, impl Fn(DirLinkId) -> NodeId + Copy) {
        let links = vec![
            (DirLinkId(0), NodeId(0), NodeId(1)),
            (DirLinkId(1), NodeId(1), NodeId(0)),
            (DirLinkId(2), NodeId(1), NodeId(2)),
            (DirLinkId(3), NodeId(2), NodeId(1)),
        ];
        let routing = Routing::build(3, &links);
        let link_to = |l: DirLinkId| match l.0 {
            0 => NodeId(1),
            1 => NodeId(0),
            2 => NodeId(2),
            3 => NodeId(1),
            _ => unreachable!(),
        };
        (MulticastState::new(MulticastConfig::default(), 3, 4), routing, link_to)
    }

    #[test]
    fn join_grafts_path_from_root() {
        let (mut m, r, to) = setup();
        let g = m.create_group(NodeId(0));
        let ops = m.join(g, NodeId(2), AppId(5), &r, to);
        // Path 0->2 is links 0 and 2.
        assert_eq!(ops.len(), 2);
        assert!(ops.iter().all(|op| matches!(op, TreeOp::Graft { .. })));
        // Not active until grafts complete.
        assert!(!m.is_active(g, DirLinkId(0)));
        m.graft_done(g, DirLinkId(0), NodeId(0));
        m.graft_done(g, DirLinkId(2), NodeId(1));
        assert!(m.is_active(g, DirLinkId(0)));
        assert!(m.is_active(g, DirLinkId(2)));
        assert_eq!(m.active_out(g, NodeId(0)), &[DirLinkId(0)]);
        assert_eq!(m.active_out(g, NodeId(1)), &[DirLinkId(2)]);
        m.audit(&r, to).unwrap();
    }

    #[test]
    fn leave_prunes_unneeded_links_only() {
        let (mut m, r, to) = setup();
        let g = m.create_group(NodeId(0));
        // Members at both node 1 and node 2.
        for op in m.join(g, NodeId(1), AppId(1), &r, to) {
            if let TreeOp::Graft { link, .. } = op {
                m.graft_done(g, link, NodeId(0));
            }
        }
        for op in m.join(g, NodeId(2), AppId(2), &r, to) {
            if let TreeOp::Graft { link, .. } = op {
                m.graft_done(g, link, NodeId(1));
            }
        }
        // Node 2 leaves: only link 1->2 should be pruned.
        let ops = m.leave(g, NodeId(2), AppId(2), &r, to);
        assert_eq!(ops.len(), 1);
        match &ops[0] {
            TreeOp::Prune { link, .. } => assert_eq!(*link, DirLinkId(2)),
            other => panic!("expected prune, got {other:?}"),
        }
        m.prune_done(g, DirLinkId(2), NodeId(1));
        assert!(!m.is_active(g, DirLinkId(2)));
        assert!(m.is_active(g, DirLinkId(0)));
        m.audit(&r, to).unwrap();
    }

    #[test]
    fn rejoin_during_prune_keeps_link() {
        let (mut m, r, to) = setup();
        let g = m.create_group(NodeId(0));
        for op in m.join(g, NodeId(2), AppId(2), &r, to) {
            if let TreeOp::Graft { link, .. } = op {
                let from = if link == DirLinkId(0) { NodeId(0) } else { NodeId(1) };
                m.graft_done(g, link, from);
            }
        }
        let ops = m.leave(g, NodeId(2), AppId(2), &r, to);
        assert_eq!(ops.len(), 2); // both links pruned
                                  // Rejoin before prune fires.
        let grafts = m.join(g, NodeId(2), AppId(2), &r, to);
        // Links are still active, so no new grafts needed.
        assert!(grafts.is_empty());
        // The stale prunes fire and must be ignored.
        m.prune_done(g, DirLinkId(0), NodeId(0));
        m.prune_done(g, DirLinkId(2), NodeId(1));
        assert!(m.is_active(g, DirLinkId(0)));
        assert!(m.is_active(g, DirLinkId(2)));
        m.audit(&r, to).unwrap();
    }

    #[test]
    fn leave_during_graft_suppresses_activation() {
        let (mut m, r, to) = setup();
        let g = m.create_group(NodeId(0));
        let _ = m.join(g, NodeId(2), AppId(2), &r, to);
        let _ = m.leave(g, NodeId(2), AppId(2), &r, to);
        // Graft fires after the member already left: must not activate.
        m.graft_done(g, DirLinkId(0), NodeId(0));
        m.graft_done(g, DirLinkId(2), NodeId(1));
        assert!(!m.is_active(g, DirLinkId(0)));
        assert!(!m.is_active(g, DirLinkId(2)));
        m.audit(&r, to).unwrap();
    }

    #[test]
    fn two_apps_same_node_count_as_one_membership() {
        let (mut m, r, to) = setup();
        let g = m.create_group(NodeId(0));
        let ops1 = m.join(g, NodeId(2), AppId(1), &r, to);
        assert_eq!(ops1.len(), 2);
        for op in ops1 {
            if let TreeOp::Graft { link, .. } = op {
                let from = if link == DirLinkId(0) { NodeId(0) } else { NodeId(1) };
                m.graft_done(g, link, from);
            }
        }
        // Second app at the same node: no new grafts.
        assert!(m.join(g, NodeId(2), AppId(2), &r, to).is_empty());
        // First app leaves: node still a member, nothing pruned.
        assert!(m.leave(g, NodeId(2), AppId(1), &r, to).is_empty());
        // Last app leaves: prunes scheduled.
        assert_eq!(m.leave(g, NodeId(2), AppId(2), &r, to).len(), 2);
        m.audit(&r, to).unwrap();
    }

    #[test]
    fn member_at_root_needs_no_links() {
        let (mut m, r, to) = setup();
        let g = m.create_group(NodeId(0));
        assert!(m.join(g, NodeId(0), AppId(9), &r, to).is_empty());
        assert!(m.is_subscribed(g, NodeId(0), AppId(9)));
        assert_eq!(m.subscribers_at(g, NodeId(0)), &[AppId(9)]);
        m.audit(&r, to).unwrap();
    }

    #[test]
    fn node_crash_deactivates_outgoing_links_and_membership() {
        let (mut m, r, to) = setup();
        let g = m.create_group(NodeId(0));
        for op in m.join(g, NodeId(2), AppId(2), &r, to) {
            if let TreeOp::Graft { link, .. } = op {
                let from = if link == DirLinkId(0) { NodeId(0) } else { NodeId(1) };
                m.graft_done(g, link, from);
            }
        }
        // Node 1 (mid-router) crashes: its out-link 1->2 deactivates, but
        // the upstream 0->1 link keeps blindly carrying the group.
        m.node_crashed(NodeId(1), &r, to);
        assert!(m.is_active(g, DirLinkId(0)));
        assert!(!m.is_active(g, DirLinkId(2)));
        assert!(m.active_out(g, NodeId(1)).is_empty());
        m.audit(&r, to).unwrap();
        // The downstream member survives in the member list (its node did
        // not crash) so a re-join can re-graft the lost link.
        let ops = m.join(g, NodeId(2), AppId(2), &r, to);
        assert_eq!(ops.len(), 1);
        match &ops[0] {
            TreeOp::Graft { link, .. } => assert_eq!(*link, DirLinkId(2)),
            other => panic!("expected graft, got {other:?}"),
        }
    }

    #[test]
    fn failed_graft_can_be_retried() {
        let (mut m, r, to) = setup();
        let g = m.create_group(NodeId(0));
        let ops = m.join(g, NodeId(2), AppId(2), &r, to);
        assert_eq!(ops.len(), 2);
        // Both grafts fail (say, the mid-router was down when they fired).
        m.graft_failed(g, DirLinkId(0));
        m.graft_failed(g, DirLinkId(2));
        assert!(!m.is_active(g, DirLinkId(0)));
        // A later join retries both grafts.
        let retry = m.join(g, NodeId(2), AppId(2), &r, to);
        assert_eq!(retry.len(), 2);
        m.audit(&r, to).unwrap();
    }

    #[test]
    fn snapshot_reports_sorted_state() {
        let (mut m, r, to) = setup();
        let g = m.create_group(NodeId(0));
        for op in m.join(g, NodeId(2), AppId(2), &r, to) {
            if let TreeOp::Graft { link, .. } = op {
                let from = if link == DirLinkId(0) { NodeId(0) } else { NodeId(1) };
                m.graft_done(g, link, from);
            }
        }
        let snap = m.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].root, NodeId(0));
        assert_eq!(snap[0].active_links, vec![DirLinkId(0), DirLinkId(2)]);
        assert_eq!(snap[0].member_nodes, vec![NodeId(2)]);
    }

    #[test]
    fn join_batch_matches_sequential_joins() {
        let links = vec![
            (DirLinkId(0), NodeId(0), NodeId(1)),
            (DirLinkId(1), NodeId(1), NodeId(0)),
            (DirLinkId(2), NodeId(1), NodeId(2)),
            (DirLinkId(3), NodeId(2), NodeId(1)),
            (DirLinkId(4), NodeId(1), NodeId(3)),
            (DirLinkId(5), NodeId(3), NodeId(1)),
        ];
        let routing = Routing::build(4, &links);
        let to = |l: DirLinkId| match l.0 {
            0 => NodeId(1),
            1 => NodeId(0),
            2 => NodeId(2),
            3 => NodeId(1),
            4 => NodeId(3),
            5 => NodeId(1),
            _ => unreachable!(),
        };
        let crowd = [(NodeId(2), AppId(1)), (NodeId(3), AppId(2)), (NodeId(1), AppId(3))];

        let mut seq = MulticastState::new(MulticastConfig::default(), 4, 6);
        let gs = seq.create_group(NodeId(0));
        let mut seq_links: Vec<DirLinkId> = Vec::new();
        for &(n, a) in &crowd {
            for op in seq.join(gs, n, a, &routing, to) {
                if let TreeOp::Graft { link, .. } = op {
                    seq_links.push(link);
                }
            }
        }
        seq_links.sort_unstable();

        let mut bat = MulticastState::new(MulticastConfig::default(), 4, 6);
        let gb = bat.create_group(NodeId(0));
        let mut bat_links: Vec<DirLinkId> = bat
            .join_batch(gb, &crowd, &routing, to)
            .iter()
            .map(|op| match op {
                TreeOp::Graft { link, .. } => *link,
                other => panic!("expected graft, got {other:?}"),
            })
            .collect();
        bat_links.sort_unstable();

        // Same graft set, each shared ancestor link exactly once.
        assert_eq!(seq_links, bat_links);
        assert_eq!(bat_links, vec![DirLinkId(0), DirLinkId(2), DirLinkId(4)]);
        bat.audit(&routing, to).unwrap();
        // And identical desire/membership state afterwards.
        assert_eq!(seq.snapshot(), bat.snapshot());
    }
}
