//! IP-multicast-style group membership and distribution-tree maintenance.
//!
//! Each multicast group is rooted at its source node. The distribution tree
//! of a group is the union of the routed paths from the root to every node
//! with at least one subscribed application. Joining grafts the missing
//! links onto the tree after a (small) graft latency; leaving prunes links
//! after the IGMP-style **leave latency** — the delay the paper's §V calls
//! out as a congestion hazard, because a dropped layer keeps flowing (and
//! keeps congesting the bottleneck) until the prune takes effect.
//!
//! Grafts and prunes are *checked against current desire when they fire*:
//! if membership changed again in flight, a stale graft does not activate a
//! link nobody wants, and a stale prune does not cut a link that regained a
//! subscriber.

use crate::app::AppId;
use crate::link::DirLinkId;
use crate::node::{NodeId, Routing};
use crate::time::SimDuration;
use std::collections::HashSet;

/// Index of a multicast group. Layered sessions use one group per layer.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GroupId(pub u32);

/// Latency parameters for multicast state changes.
#[derive(Clone, Copy, Debug)]
pub struct MulticastConfig {
    /// Delay from a join until the grafted links carry traffic.
    pub graft_latency: SimDuration,
    /// Delay from the last local leave until pruned links stop carrying
    /// traffic (IGMP group-leave latency).
    pub leave_latency: SimDuration,
}

impl Default for MulticastConfig {
    fn default() -> Self {
        MulticastConfig {
            graft_latency: SimDuration::from_millis(50),
            leave_latency: SimDuration::from_millis(500),
        }
    }
}

/// A graft/prune the caller must schedule as a future event.
#[derive(Debug, PartialEq, Eq)]
pub enum TreeOp {
    Graft { group: GroupId, link: DirLinkId, after: SimDuration },
    Prune { group: GroupId, link: DirLinkId, after: SimDuration },
}

struct GroupState {
    root: NodeId,
    /// Subscribed apps per node, indexed densely by node id and kept
    /// **sorted** (node-level membership is the count > 0). Sorted storage
    /// makes the per-arrival delivery path a plain slice borrow — no
    /// per-packet collect-and-sort, and no hashing on the hot path.
    members: Vec<Vec<AppId>>,
    /// One bit per node, set iff `members[node]` is non-empty. The bitmap is
    /// L1-resident even on 100k-node domains, so the per-arrival membership
    /// probe at the (common) non-member router never touches the dense
    /// members table.
    member_bits: Vec<u64>,
    /// Nodes with at least one subscriber, sorted — the tree-maintenance
    /// walks (desired-link recomputation, snapshots) iterate this instead of
    /// scanning every node.
    member_nodes: Vec<NodeId>,
    /// Links currently carrying the group.
    active: HashSet<DirLinkId>,
    /// Refcounted desired-link set, dense by directed-link id: how many
    /// current members' root-paths traverse each link. Maintained
    /// incrementally on join/leave/crash (routing is static, so a member's
    /// path never changes while it is subscribed), which makes the
    /// desire check at graft/prune completion O(1) instead of a re-walk of
    /// every member's path — the walk made large-domain tree setup
    /// O(links × members × depth).
    desired_refs: Vec<u32>,
    /// Outgoing active links per node, indexed densely by node id — the
    /// forwarding fast path reads this on every multicast hop.
    active_out: Vec<Vec<DirLinkId>>,
    /// One bit per node, set iff `active_out[node]` is non-empty; lets the
    /// fan-out probe at leaf routers skip the table load entirely.
    active_out_bits: Vec<u64>,
    /// Grafts in flight.
    pending_graft: HashSet<DirLinkId>,
    /// Prunes in flight.
    pending_prune: HashSet<DirLinkId>,
}

#[inline]
fn bit_get(bits: &[u64], i: usize) -> bool {
    bits[i >> 6] & (1 << (i & 63)) != 0
}

#[inline]
fn bit_set(bits: &mut [u64], i: usize) {
    bits[i >> 6] |= 1 << (i & 63);
}

#[inline]
fn bit_clear(bits: &mut [u64], i: usize) {
    bits[i >> 6] &= !(1 << (i & 63));
}

/// All multicast state of the network.
pub struct MulticastState {
    cfg: MulticastConfig,
    groups: Vec<GroupState>,
    num_nodes: usize,
    num_links: usize,
}

impl MulticastState {
    pub fn new(cfg: MulticastConfig, num_nodes: usize, num_links: usize) -> Self {
        MulticastState { cfg, groups: Vec::new(), num_nodes, num_links }
    }

    /// Register a new group rooted at `root`. Layered sources create one
    /// group per layer, all rooted at the source's node.
    pub fn create_group(&mut self, root: NodeId) -> GroupId {
        let id = GroupId(self.groups.len() as u32);
        let words = self.num_nodes.div_ceil(64).max(1);
        self.groups.push(GroupState {
            root,
            members: vec![Vec::new(); self.num_nodes],
            member_bits: vec![0; words],
            member_nodes: Vec::new(),
            active: HashSet::new(),
            desired_refs: vec![0; self.num_links],
            active_out: vec![Vec::new(); self.num_nodes],
            active_out_bits: vec![0; words],
            pending_graft: HashSet::new(),
            pending_prune: HashSet::new(),
        });
        id
    }

    /// Number of registered groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The root (source node) of a group.
    pub fn root(&self, group: GroupId) -> NodeId {
        self.groups[group.0 as usize].root
    }

    /// Apps subscribed to `group` at `node`, in ascending id order.
    pub fn subscribers_at(&self, group: GroupId, node: NodeId) -> &[AppId] {
        let g = &self.groups[group.0 as usize];
        if !bit_get(&g.member_bits, node.index()) {
            return &[];
        }
        &g.members[node.index()]
    }

    /// Whether `app` at `node` is subscribed to `group`.
    pub fn is_subscribed(&self, group: GroupId, node: NodeId, app: AppId) -> bool {
        let g = &self.groups[group.0 as usize];
        bit_get(&g.member_bits, node.index()) && g.members[node.index()].binary_search(&app).is_ok()
    }

    /// Active outgoing links for `group` at `node`.
    pub fn active_out(&self, group: GroupId, node: NodeId) -> &[DirLinkId] {
        let g = &self.groups[group.0 as usize];
        if !bit_get(&g.active_out_bits, node.index()) {
            return &[];
        }
        &g.active_out[node.index()]
    }

    /// Whether a directed link currently carries `group`.
    pub fn is_active(&self, group: GroupId, link: DirLinkId) -> bool {
        self.groups[group.0 as usize].active.contains(&link)
    }

    /// A node became a member: count its root-path links into the desired
    /// set. No-op for the root itself (it needs no links to reach itself).
    fn desired_add(
        g: &mut GroupState,
        node: NodeId,
        routing: &Routing,
        link_to: &impl Fn(DirLinkId) -> NodeId,
    ) {
        if node == g.root {
            return;
        }
        for l in routing.path(g.root, node, link_to) {
            g.desired_refs[l.0 as usize] += 1;
        }
    }

    /// A node stopped being a member: uncount its root-path links. Routing
    /// is static, so this walks exactly the links `desired_add` counted.
    fn desired_remove(
        g: &mut GroupState,
        node: NodeId,
        routing: &Routing,
        link_to: &impl Fn(DirLinkId) -> NodeId,
    ) {
        if node == g.root {
            return;
        }
        for l in routing.path(g.root, node, link_to) {
            let refs = &mut g.desired_refs[l.0 as usize];
            debug_assert!(*refs > 0, "desired refcount underflow on {l:?}");
            *refs -= 1;
        }
    }

    /// Subscribe `app` at `node` to `group`. Returns the tree operations the
    /// simulator must schedule.
    pub fn join(
        &mut self,
        group: GroupId,
        node: NodeId,
        app: AppId,
        routing: &Routing,
        link_to: impl Fn(DirLinkId) -> NodeId,
    ) -> Vec<TreeOp> {
        let graft_latency = self.cfg.graft_latency;
        let g = &mut self.groups[group.0 as usize];
        let apps = &mut g.members[node.index()];
        let was_member = !apps.is_empty();
        if !was_member {
            bit_set(&mut g.member_bits, node.index());
            if let Err(pos) = g.member_nodes.binary_search(&node) {
                g.member_nodes.insert(pos, node);
            }
        }
        if let Err(pos) = apps.binary_search(&app) {
            apps.insert(pos, app);
        }
        if !was_member {
            Self::desired_add(g, node, routing, &link_to);
        }
        // Scan in link-id order so the scheduled event order is
        // deterministic (and identical to the sorted order the recomputing
        // implementation produced).
        let mut ops = Vec::new();
        for (i, &refs) in g.desired_refs.iter().enumerate() {
            if refs == 0 {
                continue;
            }
            let l = DirLinkId(i as u32);
            // A link desired again cancels its pending prune logically: the
            // prune re-checks desire when it fires. Only schedule a graft for
            // links that are neither active nor already being grafted.
            if !g.active.contains(&l) && !g.pending_graft.contains(&l) {
                g.pending_graft.insert(l);
                ops.push(TreeOp::Graft { group, link: l, after: graft_latency });
            }
        }
        ops
    }

    /// Unsubscribe `app` at `node` from `group`.
    pub fn leave(
        &mut self,
        group: GroupId,
        node: NodeId,
        app: AppId,
        routing: &Routing,
        link_to: impl Fn(DirLinkId) -> NodeId,
    ) -> Vec<TreeOp> {
        let leave_latency = self.cfg.leave_latency;
        let g = &mut self.groups[group.0 as usize];
        let apps = &mut g.members[node.index()];
        let was_member = !apps.is_empty();
        if let Ok(pos) = apps.binary_search(&app) {
            apps.remove(pos);
        }
        if was_member && apps.is_empty() {
            bit_clear(&mut g.member_bits, node.index());
            if let Ok(pos) = g.member_nodes.binary_search(&node) {
                g.member_nodes.remove(pos);
            }
            Self::desired_remove(g, node, routing, &link_to);
        }
        let mut active: Vec<DirLinkId> = g.active.iter().copied().collect();
        active.sort_unstable();
        let mut ops = Vec::new();
        for l in active {
            if g.desired_refs[l.0 as usize] == 0 && !g.pending_prune.contains(&l) {
                g.pending_prune.insert(l);
                ops.push(TreeOp::Prune { group, link: l, after: leave_latency });
            }
        }
        ops
    }

    /// A graft completed. Activates the link iff it is still desired.
    pub fn graft_done(&mut self, group: GroupId, link: DirLinkId, link_from: NodeId) {
        let g = &mut self.groups[group.0 as usize];
        g.pending_graft.remove(&link);
        if g.desired_refs[link.0 as usize] > 0 && g.active.insert(link) {
            g.active_out[link_from.index()].push(link);
            bit_set(&mut g.active_out_bits, link_from.index());
        }
    }

    /// A graft could not take effect (an endpoint was down when it fired).
    /// The pending marker is cleared so a later join can retry the graft.
    pub fn graft_failed(&mut self, group: GroupId, link: DirLinkId) {
        self.groups[group.0 as usize].pending_graft.remove(&link);
    }

    /// A router crashed: it loses all multicast forwarding state. Every
    /// group's active links *out of* the node are deactivated (it forwards
    /// nothing any more) and local membership is wiped (its apps are dead).
    /// Links *into* the node stay active — upstream routers have no way to
    /// know and keep forwarding into the blackhole until the protocol
    /// repairs the tree (receivers re-join, which re-grafts).
    pub fn node_crashed(
        &mut self,
        node: NodeId,
        routing: &Routing,
        link_to: impl Fn(DirLinkId) -> NodeId,
    ) {
        for g in &mut self.groups {
            for l in std::mem::take(&mut g.active_out[node.index()]) {
                g.active.remove(&l);
            }
            bit_clear(&mut g.active_out_bits, node.index());
            if !g.members[node.index()].is_empty() {
                g.members[node.index()].clear();
                if let Ok(pos) = g.member_nodes.binary_search(&node) {
                    g.member_nodes.remove(pos);
                }
                Self::desired_remove(g, node, routing, &link_to);
            }
            bit_clear(&mut g.member_bits, node.index());
        }
    }

    /// A prune completed. Deactivates the link iff it is still undesired.
    pub fn prune_done(&mut self, group: GroupId, link: DirLinkId, link_from: NodeId) {
        let g = &mut self.groups[group.0 as usize];
        g.pending_prune.remove(&link);
        if g.desired_refs[link.0 as usize] == 0 && g.active.remove(&link) {
            let outs = &mut g.active_out[link_from.index()];
            outs.retain(|&x| x != link);
            if outs.is_empty() {
                bit_clear(&mut g.active_out_bits, link_from.index());
            }
        }
    }

    /// Ground-truth snapshot: for each group, the set of active links and
    /// member nodes. The topology-discovery tool reads this (possibly with
    /// staleness added by the `topology` crate).
    pub fn snapshot(&self) -> Vec<GroupSnapshot> {
        self.groups
            .iter()
            .enumerate()
            .map(|(i, g)| GroupSnapshot {
                group: GroupId(i as u32),
                root: g.root,
                active_links: {
                    let mut v: Vec<DirLinkId> = g.active.iter().copied().collect();
                    v.sort_unstable();
                    v
                },
                member_nodes: g.member_nodes.clone(),
            })
            .collect()
    }
}

/// Point-in-time view of one group's distribution tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupSnapshot {
    pub group: GroupId,
    pub root: NodeId,
    pub active_links: Vec<DirLinkId>,
    pub member_nodes: Vec<NodeId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Routing;

    /// Chain 0 - 1 - 2; link ids: 0:0->1, 1:1->0, 2:1->2, 3:2->1.
    fn setup() -> (MulticastState, Routing, impl Fn(DirLinkId) -> NodeId + Copy) {
        let links = vec![
            (DirLinkId(0), NodeId(0), NodeId(1)),
            (DirLinkId(1), NodeId(1), NodeId(0)),
            (DirLinkId(2), NodeId(1), NodeId(2)),
            (DirLinkId(3), NodeId(2), NodeId(1)),
        ];
        let routing = Routing::build(3, &links);
        let link_to = |l: DirLinkId| match l.0 {
            0 => NodeId(1),
            1 => NodeId(0),
            2 => NodeId(2),
            3 => NodeId(1),
            _ => unreachable!(),
        };
        (MulticastState::new(MulticastConfig::default(), 3, 4), routing, link_to)
    }

    #[test]
    fn join_grafts_path_from_root() {
        let (mut m, r, to) = setup();
        let g = m.create_group(NodeId(0));
        let ops = m.join(g, NodeId(2), AppId(5), &r, to);
        // Path 0->2 is links 0 and 2.
        assert_eq!(ops.len(), 2);
        assert!(ops.iter().all(|op| matches!(op, TreeOp::Graft { .. })));
        // Not active until grafts complete.
        assert!(!m.is_active(g, DirLinkId(0)));
        m.graft_done(g, DirLinkId(0), NodeId(0));
        m.graft_done(g, DirLinkId(2), NodeId(1));
        assert!(m.is_active(g, DirLinkId(0)));
        assert!(m.is_active(g, DirLinkId(2)));
        assert_eq!(m.active_out(g, NodeId(0)), &[DirLinkId(0)]);
        assert_eq!(m.active_out(g, NodeId(1)), &[DirLinkId(2)]);
    }

    #[test]
    fn leave_prunes_unneeded_links_only() {
        let (mut m, r, to) = setup();
        let g = m.create_group(NodeId(0));
        // Members at both node 1 and node 2.
        for op in m.join(g, NodeId(1), AppId(1), &r, to) {
            if let TreeOp::Graft { link, .. } = op {
                m.graft_done(g, link, NodeId(0));
            }
        }
        for op in m.join(g, NodeId(2), AppId(2), &r, to) {
            if let TreeOp::Graft { link, .. } = op {
                m.graft_done(g, link, NodeId(1));
            }
        }
        // Node 2 leaves: only link 1->2 should be pruned.
        let ops = m.leave(g, NodeId(2), AppId(2), &r, to);
        assert_eq!(ops.len(), 1);
        match &ops[0] {
            TreeOp::Prune { link, .. } => assert_eq!(*link, DirLinkId(2)),
            other => panic!("expected prune, got {other:?}"),
        }
        m.prune_done(g, DirLinkId(2), NodeId(1));
        assert!(!m.is_active(g, DirLinkId(2)));
        assert!(m.is_active(g, DirLinkId(0)));
    }

    #[test]
    fn rejoin_during_prune_keeps_link() {
        let (mut m, r, to) = setup();
        let g = m.create_group(NodeId(0));
        for op in m.join(g, NodeId(2), AppId(2), &r, to) {
            if let TreeOp::Graft { link, .. } = op {
                let from = if link == DirLinkId(0) { NodeId(0) } else { NodeId(1) };
                m.graft_done(g, link, from);
            }
        }
        let ops = m.leave(g, NodeId(2), AppId(2), &r, to);
        assert_eq!(ops.len(), 2); // both links pruned
                                  // Rejoin before prune fires.
        let grafts = m.join(g, NodeId(2), AppId(2), &r, to);
        // Links are still active, so no new grafts needed.
        assert!(grafts.is_empty());
        // The stale prunes fire and must be ignored.
        m.prune_done(g, DirLinkId(0), NodeId(0));
        m.prune_done(g, DirLinkId(2), NodeId(1));
        assert!(m.is_active(g, DirLinkId(0)));
        assert!(m.is_active(g, DirLinkId(2)));
    }

    #[test]
    fn leave_during_graft_suppresses_activation() {
        let (mut m, r, to) = setup();
        let g = m.create_group(NodeId(0));
        let _ = m.join(g, NodeId(2), AppId(2), &r, to);
        let _ = m.leave(g, NodeId(2), AppId(2), &r, to);
        // Graft fires after the member already left: must not activate.
        m.graft_done(g, DirLinkId(0), NodeId(0));
        m.graft_done(g, DirLinkId(2), NodeId(1));
        assert!(!m.is_active(g, DirLinkId(0)));
        assert!(!m.is_active(g, DirLinkId(2)));
    }

    #[test]
    fn two_apps_same_node_count_as_one_membership() {
        let (mut m, r, to) = setup();
        let g = m.create_group(NodeId(0));
        let ops1 = m.join(g, NodeId(2), AppId(1), &r, to);
        assert_eq!(ops1.len(), 2);
        for op in ops1 {
            if let TreeOp::Graft { link, .. } = op {
                let from = if link == DirLinkId(0) { NodeId(0) } else { NodeId(1) };
                m.graft_done(g, link, from);
            }
        }
        // Second app at the same node: no new grafts.
        assert!(m.join(g, NodeId(2), AppId(2), &r, to).is_empty());
        // First app leaves: node still a member, nothing pruned.
        assert!(m.leave(g, NodeId(2), AppId(1), &r, to).is_empty());
        // Last app leaves: prunes scheduled.
        assert_eq!(m.leave(g, NodeId(2), AppId(2), &r, to).len(), 2);
    }

    #[test]
    fn member_at_root_needs_no_links() {
        let (mut m, r, to) = setup();
        let g = m.create_group(NodeId(0));
        assert!(m.join(g, NodeId(0), AppId(9), &r, to).is_empty());
        assert!(m.is_subscribed(g, NodeId(0), AppId(9)));
        assert_eq!(m.subscribers_at(g, NodeId(0)), &[AppId(9)]);
    }

    #[test]
    fn node_crash_deactivates_outgoing_links_and_membership() {
        let (mut m, r, to) = setup();
        let g = m.create_group(NodeId(0));
        for op in m.join(g, NodeId(2), AppId(2), &r, to) {
            if let TreeOp::Graft { link, .. } = op {
                let from = if link == DirLinkId(0) { NodeId(0) } else { NodeId(1) };
                m.graft_done(g, link, from);
            }
        }
        // Node 1 (mid-router) crashes: its out-link 1->2 deactivates, but
        // the upstream 0->1 link keeps blindly carrying the group.
        m.node_crashed(NodeId(1), &r, to);
        assert!(m.is_active(g, DirLinkId(0)));
        assert!(!m.is_active(g, DirLinkId(2)));
        assert!(m.active_out(g, NodeId(1)).is_empty());
        // The downstream member survives in the member list (its node did
        // not crash) so a re-join can re-graft the lost link.
        let ops = m.join(g, NodeId(2), AppId(2), &r, to);
        assert_eq!(ops.len(), 1);
        match &ops[0] {
            TreeOp::Graft { link, .. } => assert_eq!(*link, DirLinkId(2)),
            other => panic!("expected graft, got {other:?}"),
        }
    }

    #[test]
    fn failed_graft_can_be_retried() {
        let (mut m, r, to) = setup();
        let g = m.create_group(NodeId(0));
        let ops = m.join(g, NodeId(2), AppId(2), &r, to);
        assert_eq!(ops.len(), 2);
        // Both grafts fail (say, the mid-router was down when they fired).
        m.graft_failed(g, DirLinkId(0));
        m.graft_failed(g, DirLinkId(2));
        assert!(!m.is_active(g, DirLinkId(0)));
        // A later join retries both grafts.
        let retry = m.join(g, NodeId(2), AppId(2), &r, to);
        assert_eq!(retry.len(), 2);
    }

    #[test]
    fn snapshot_reports_sorted_state() {
        let (mut m, r, to) = setup();
        let g = m.create_group(NodeId(0));
        for op in m.join(g, NodeId(2), AppId(2), &r, to) {
            if let TreeOp::Graft { link, .. } = op {
                let from = if link == DirLinkId(0) { NodeId(0) } else { NodeId(1) };
                m.graft_done(g, link, from);
            }
        }
        let snap = m.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].root, NodeId(0));
        assert_eq!(snap[0].active_links, vec![DirLinkId(0), DirLinkId(2)]);
        assert_eq!(snap[0].member_nodes, vec![NodeId(2)]);
    }
}
