//! Receiver-side loss accounting.
//!
//! Receivers learn about loss the way RTCP does: from gaps in per-group
//! sequence numbers. [`SeqTracker`] tracks one group's stream; windows are
//! harvested periodically into [`LossWindow`]s, which are what receivers
//! report to the controller agent ("receivers periodically report loss
//! information to the controller agent").
//!
//! In this simulator packets on one group follow a single FIFO tree path, so
//! there is no reordering or duplication; a sequence gap is always loss.

/// Loss/throughput accounting for one interval of one group's stream.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LossWindow {
    /// Packets received in the window.
    pub received: u64,
    /// Packets detected lost (sequence gaps) in the window.
    pub lost: u64,
    /// Bytes received in the window.
    pub bytes: u64,
}

impl LossWindow {
    /// Fraction of expected packets that were lost (0 when nothing expected).
    pub fn loss_rate(&self) -> f64 {
        let expected = self.received + self.lost;
        if expected == 0 {
            0.0
        } else {
            self.lost as f64 / expected as f64
        }
    }

    /// Merge two windows (e.g. across the layers of one session).
    pub fn merge(&self, other: &LossWindow) -> LossWindow {
        LossWindow {
            received: self.received + other.received,
            lost: self.lost + other.lost,
            bytes: self.bytes + other.bytes,
        }
    }
}

/// Per-group sequence tracking with window harvesting.
#[derive(Debug, Default)]
pub struct SeqTracker {
    last_seq: Option<u64>,
    window: LossWindow,
    total: LossWindow,
}

impl SeqTracker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a received packet with sequence `seq` and `bytes` on the wire.
    pub fn on_packet(&mut self, seq: u64, bytes: u32) {
        match self.last_seq {
            None => {
                // First packet after (re)subscribing: nothing before it can
                // be counted as lost — we may have joined mid-stream.
                self.window.received += 1;
                self.window.bytes += bytes as u64;
            }
            Some(last) if seq > last => {
                let gap = seq - last - 1;
                self.window.lost += gap;
                self.window.received += 1;
                self.window.bytes += bytes as u64;
            }
            Some(_) => {
                // Late/duplicate: impossible on a FIFO tree, but count the
                // bytes defensively rather than panicking on a model change.
                self.window.received += 1;
                self.window.bytes += bytes as u64;
            }
        }
        self.last_seq = Some(seq.max(self.last_seq.unwrap_or(0)));
    }

    /// Harvest and reset the current window.
    pub fn take_window(&mut self) -> LossWindow {
        let w = self.window;
        self.total = self.total.merge(&w);
        self.window = LossWindow::default();
        w
    }

    /// Peek at the running window without resetting.
    pub fn current_window(&self) -> LossWindow {
        self.window
    }

    /// Cumulative counters over all harvested windows.
    pub fn lifetime(&self) -> LossWindow {
        self.total.merge(&self.window)
    }

    /// Forget stream position (call on re-subscribe so the gap across the
    /// unsubscribed period is not counted as loss).
    pub fn resync(&mut self) {
        self.last_seq = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_stream_has_no_loss() {
        let mut t = SeqTracker::new();
        for s in 0..10 {
            t.on_packet(s, 1000);
        }
        let w = t.take_window();
        assert_eq!(w.received, 10);
        assert_eq!(w.lost, 0);
        assert_eq!(w.bytes, 10_000);
        assert_eq!(w.loss_rate(), 0.0);
    }

    #[test]
    fn gaps_count_as_loss() {
        let mut t = SeqTracker::new();
        t.on_packet(0, 1000);
        t.on_packet(1, 1000);
        t.on_packet(4, 1000); // 2, 3 lost
        t.on_packet(5, 1000);
        let w = t.take_window();
        assert_eq!(w.received, 4);
        assert_eq!(w.lost, 2);
        assert!((w.loss_rate() - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn join_mid_stream_is_not_loss() {
        let mut t = SeqTracker::new();
        t.on_packet(1000, 500);
        let w = t.take_window();
        assert_eq!(w.received, 1);
        assert_eq!(w.lost, 0);
    }

    #[test]
    fn resync_suppresses_cross_gap() {
        let mut t = SeqTracker::new();
        t.on_packet(5, 1000);
        let _ = t.take_window();
        // Receiver unsubscribed and re-subscribed; stream moved to seq 50.
        t.resync();
        t.on_packet(50, 1000);
        let w = t.take_window();
        assert_eq!(w.lost, 0);
        assert_eq!(w.received, 1);
    }

    #[test]
    fn windows_reset_and_accumulate_lifetime() {
        let mut t = SeqTracker::new();
        t.on_packet(0, 100);
        t.on_packet(2, 100); // 1 lost
        let w1 = t.take_window();
        assert_eq!((w1.received, w1.lost), (2, 1));
        t.on_packet(3, 100);
        let w2 = t.take_window();
        assert_eq!((w2.received, w2.lost), (1, 0));
        let life = t.lifetime();
        assert_eq!((life.received, life.lost, life.bytes), (3, 1, 300));
    }

    #[test]
    fn empty_window_loss_rate_is_zero() {
        let t = SeqTracker::new();
        assert_eq!(t.current_window().loss_rate(), 0.0);
    }

    #[test]
    fn merge_sums_fields() {
        let a = LossWindow { received: 1, lost: 2, bytes: 3 };
        let b = LossWindow { received: 10, lost: 20, bytes: 30 };
        assert_eq!(a.merge(&b), LossWindow { received: 11, lost: 22, bytes: 33 });
    }
}
