//! Scheduled fault injection: link outages, router crashes, and the
//! [`FaultPlan`] DSL that describes them.
//!
//! Faults are ordinary events on the simulator's deterministic event queue,
//! so a faulted run is exactly as reproducible as a clean one: identical
//! seeds and plans produce bit-identical histories. The semantics are:
//!
//! * **Link down** — the directed link stops accepting packets (arrivals
//!   are counted as drops) and its queue is flushed. A packet already being
//!   serialized is judged when its transmission completes: if the link is
//!   still down it dies on the wire; if the outage was shorter than the
//!   serialization time, it survives (a micro-flap a store-and-forward hop
//!   never noticed).
//! * **Node crash** — the router forwards nothing, delivers nothing to its
//!   apps, swallows their timers, and loses its multicast forwarding state
//!   (its out-links are deactivated and local group membership is wiped).
//!   Upstream routers keep forwarding into the dead node — they have no way
//!   to know — so traffic blackholes there until the protocol repairs the
//!   tree.
//! * **Node restart** — the router forwards again and every app hosted on
//!   it gets an [`crate::App::on_restart`] callback to rebuild its state
//!   (receivers re-join their groups, which re-grafts the missing links).
//!
//! Plans are built from one-shot events, periodic flaps, paired outages,
//! and a seeded-random chaos generator; the chaos expansion happens at
//! build time through [`crate::RngStream`], so the plan itself — not the
//! run — is where the randomness lives.

use crate::link::DirLinkId;
use crate::node::NodeId;
use crate::rng::RngStream;
use crate::time::{SimDuration, SimTime};

/// One injectable fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The directed link stops carrying packets and flushes its queue.
    LinkDown(DirLinkId),
    /// The directed link carries packets again.
    LinkUp(DirLinkId),
    /// The node stops forwarding, loses multicast state, and its apps go
    /// silent.
    NodeCrash(NodeId),
    /// The node forwards again; hosted apps get `on_restart`.
    NodeRestart(NodeId),
}

/// A schedule of faults, installed into a simulator before the run.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    events: Vec<(SimTime, FaultKind)>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled `(time, fault)` pairs, in insertion order.
    pub fn events(&self) -> &[(SimTime, FaultKind)] {
        &self.events
    }

    /// Schedule one fault.
    pub fn at(mut self, time: SimTime, kind: FaultKind) -> Self {
        self.events.push((time, kind));
        self
    }

    /// Take both directed halves of a duplex link down over `[from, until)`.
    pub fn link_outage(
        mut self,
        halves: (DirLinkId, DirLinkId),
        from: SimTime,
        until: SimTime,
    ) -> Self {
        assert!(until > from, "outage must end after it starts");
        for l in [halves.0, halves.1] {
            self.events.push((from, FaultKind::LinkDown(l)));
            self.events.push((until, FaultKind::LinkUp(l)));
        }
        self
    }

    /// Crash a node over `[from, until)`, restarting it at `until`.
    pub fn node_outage(mut self, node: NodeId, from: SimTime, until: SimTime) -> Self {
        assert!(until > from, "outage must end after it starts");
        self.events.push((from, FaultKind::NodeCrash(node)));
        self.events.push((until, FaultKind::NodeRestart(node)));
        self
    }

    /// Crash a node permanently at `from` (no restart).
    pub fn node_crash(mut self, node: NodeId, from: SimTime) -> Self {
        self.events.push((from, FaultKind::NodeCrash(node)));
        self
    }

    /// Partition a node over `[from, until)`: every one of its duplex
    /// links goes down together and heals together. Unlike a crash the
    /// node keeps running — apps hold their state and timers — it just
    /// cannot reach anyone, which is the fault a replicated controller's
    /// resync path must survive.
    pub fn node_partition(
        mut self,
        links: &[(DirLinkId, DirLinkId)],
        from: SimTime,
        until: SimTime,
    ) -> Self {
        assert!(!links.is_empty(), "a partition needs at least one link");
        for &halves in links {
            self = self.link_outage(halves, from, until);
        }
        self
    }

    /// Periodically flap a duplex link: down at `first_down`, up after
    /// `down_for`, repeating every `period` for `repeats` cycles.
    pub fn link_flap(
        mut self,
        halves: (DirLinkId, DirLinkId),
        first_down: SimTime,
        down_for: SimDuration,
        period: SimDuration,
        repeats: u32,
    ) -> Self {
        assert!(down_for < period, "a flap must heal before it repeats");
        for i in 0..repeats as u64 {
            let down = first_down + period * i;
            self = self.link_outage(halves, down, down + down_for);
        }
        self
    }

    /// Seeded-random chaos: `events` outages of random kind, target, start
    /// and duration inside `[from, until)`. Links are duplex pairs; nodes
    /// are crash/restart candidates. Expansion is deterministic in `seed` —
    /// the plan is random, the run replaying it is not.
    pub fn chaos(
        mut self,
        seed: u64,
        links: &[(DirLinkId, DirLinkId)],
        nodes: &[NodeId],
        from: SimTime,
        until: SimTime,
        events: u32,
    ) -> Self {
        assert!(until > from, "chaos window must be non-empty");
        assert!(!links.is_empty() || !nodes.is_empty(), "chaos needs targets");
        let mut rng = RngStream::derive(seed, "netsim/faults/chaos");
        let window = until.since(from);
        for _ in 0..events {
            let start = from + SimDuration::from_secs_f64(rng.range_f64(0.0, window.as_secs_f64()));
            let max_len = until.since(start).as_secs_f64();
            // Outages last 0.5-10 s, clipped to the remaining window.
            let len = SimDuration::from_secs_f64(rng.range_f64(0.5, 10.0).min(max_len));
            let pick_node = !nodes.is_empty() && (links.is_empty() || rng.chance(0.5));
            if len.is_zero() {
                continue;
            }
            let end = start + len;
            if pick_node {
                let n = nodes[rng.range_u64(0, nodes.len() as u64) as usize];
                self = self.node_outage(n, start, end);
            } else {
                let l = links[rng.range_u64(0, links.len() as u64) as usize];
                self = self.link_outage(l, start, end);
            }
        }
        self
    }

    /// The instant the last scheduled fault fires (heal time of the plan).
    pub fn last_event_time(&self) -> Option<SimTime> {
        self.events.iter().map(|&(t, _)| t).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outage_builders_pair_down_and_up() {
        let plan = FaultPlan::new()
            .link_outage((DirLinkId(0), DirLinkId(1)), SimTime::from_secs(5), SimTime::from_secs(9))
            .node_outage(NodeId(3), SimTime::from_secs(2), SimTime::from_secs(4));
        assert_eq!(plan.events().len(), 6);
        assert!(plan.events().contains(&(SimTime::from_secs(9), FaultKind::LinkUp(DirLinkId(1)))));
        assert!(plan
            .events()
            .contains(&(SimTime::from_secs(4), FaultKind::NodeRestart(NodeId(3)))));
        assert_eq!(plan.last_event_time(), Some(SimTime::from_secs(9)));
    }

    #[test]
    fn flap_expands_every_cycle() {
        let plan = FaultPlan::new().link_flap(
            (DirLinkId(0), DirLinkId(1)),
            SimTime::from_secs(10),
            SimDuration::from_secs(2),
            SimDuration::from_secs(20),
            3,
        );
        // 3 cycles x 2 halves x (down + up).
        assert_eq!(plan.events().len(), 12);
        let downs: Vec<SimTime> = plan
            .events()
            .iter()
            .filter(|(_, k)| matches!(k, FaultKind::LinkDown(DirLinkId(0))))
            .map(|&(t, _)| t)
            .collect();
        assert_eq!(
            downs,
            vec![SimTime::from_secs(10), SimTime::from_secs(30), SimTime::from_secs(50)]
        );
    }

    #[test]
    #[should_panic(expected = "heal before it repeats")]
    fn flap_longer_than_period_panics() {
        let _ = FaultPlan::new().link_flap(
            (DirLinkId(0), DirLinkId(1)),
            SimTime::ZERO,
            SimDuration::from_secs(30),
            SimDuration::from_secs(20),
            2,
        );
    }

    #[test]
    fn node_partition_downs_every_link_together() {
        let links = [(DirLinkId(0), DirLinkId(1)), (DirLinkId(4), DirLinkId(5))];
        let plan =
            FaultPlan::new().node_partition(&links, SimTime::from_secs(40), SimTime::from_secs(50));
        assert_eq!(plan.events().len(), 8);
        for (a, b) in links {
            for l in [a, b] {
                assert!(plan.events().contains(&(SimTime::from_secs(40), FaultKind::LinkDown(l))));
                assert!(plan.events().contains(&(SimTime::from_secs(50), FaultKind::LinkUp(l))));
            }
        }
    }

    #[test]
    fn chaos_is_deterministic_in_the_seed() {
        let mk = |seed| {
            FaultPlan::new().chaos(
                seed,
                &[(DirLinkId(0), DirLinkId(1)), (DirLinkId(2), DirLinkId(3))],
                &[NodeId(1), NodeId(2)],
                SimTime::from_secs(10),
                SimTime::from_secs(100),
                8,
            )
        };
        assert_eq!(mk(7).events(), mk(7).events());
        assert_ne!(mk(7).events(), mk(8).events());
        // Every event lands inside the window.
        for &(t, _) in mk(7).events() {
            assert!(t >= SimTime::from_secs(10) && t <= SimTime::from_secs(100));
        }
    }

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::new().is_empty());
        assert_eq!(FaultPlan::new().last_event_time(), None);
    }
}
