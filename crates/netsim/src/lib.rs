//! # netsim — deterministic discrete-event packet-network simulator
//!
//! A small, fully deterministic store-and-forward packet simulator built as
//! the substrate for reproducing *"Using Tree Topology for Multicast
//! Congestion Control"* (Jagannathan & Almeroth, ICPP 2001). It plays the
//! role the paper's authors gave to *ns*: packets, drop-tail FIFO links with
//! bandwidth and propagation delay, IP-multicast-style group membership with
//! join/leave latency, and application agents that exchange packets over the
//! simulated network.
//!
//! Design goals, in order:
//!
//! 1. **Determinism** — identical seeds produce bit-identical runs. Event
//!    ties are broken by insertion order; all randomness flows from
//!    explicitly seeded per-component RNG streams.
//! 2. **Fidelity where the paper needs it** — queueing loss at bottleneck
//!    links, serialization + propagation delay, multicast fan-out along a
//!    distribution tree, IGMP-style leave latency, lossy control traffic.
//! 3. **Speed** — a 1200-simulated-second run with 16 layered sessions
//!    completes in well under a second in release builds, so full parameter
//!    sweeps for every figure are cheap.
//!
//! The top-level entry point is [`Simulator`]; applications implement
//! [`App`] and interact with the world through [`Ctx`].

pub mod app;
pub mod event;
pub mod faults;
pub mod link;
pub mod multicast;
pub mod node;
pub mod packet;
pub mod rng;
pub mod shard;
pub mod sim;
pub mod stats;
pub mod time;
pub mod trace;

pub use app::{App, AppId, Ctx};
pub use event::{Event, EventQueue, QueueBackend, WheelStats};
pub use faults::{FaultKind, FaultPlan};
pub use link::{DirLinkId, Link, LinkConfig, LinkStats, QueueDiscipline, QueuedPacket};
pub use multicast::{GroupId, GroupSnapshot, MulticastConfig, TreeOp};
pub use node::{Node, NodeId, Routing};
pub use packet::{ControlBody, Dest, Packet, PacketId, PacketSlab, Payload, SessionId};
pub use rng::{derive_stream_seed, RngStream};
pub use shard::{EgressApp, Outbox, RelayApp, ShardedSim};
pub use sim::{NetworkBuilder, SimConfig, SimProfile, Simulator};
pub use stats::{LossWindow, SeqTracker};
pub use time::{SimDuration, SimTime};
pub use trace::{DropReason, TraceEvent, TraceLog};
