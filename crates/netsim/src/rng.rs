//! Deterministic per-component random-number streams.
//!
//! Every stochastic component (each VBR source, each receiver's backoff
//! timer, …) gets its own [`RngStream`] derived from the master seed and a
//! stable component label. Streams are therefore independent of the order in
//! which components are created or fire, which keeps sweeps comparable: the
//! traffic a source generates does not change when an unrelated receiver is
//! added to the scenario.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A named, seeded random stream.
pub struct RngStream {
    rng: StdRng,
}

/// Stable 64-bit FNV-1a hash used to mix labels into the master seed.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl RngStream {
    /// Derive a stream from `master_seed` and a stable `label`.
    pub fn derive(master_seed: u64, label: &str) -> Self {
        let mixed = master_seed ^ fnv1a(label.as_bytes()).rotate_left(17);
        RngStream { rng: StdRng::seed_from_u64(mixed) }
    }

    /// Derive a sub-stream, e.g. one per layer of a source.
    pub fn derive_sub(master_seed: u64, label: &str, index: u64) -> Self {
        let mixed = master_seed
            ^ fnv1a(label.as_bytes()).rotate_left(17)
            ^ index.wrapping_mul(0x9e3779b97f4a7c15);
        RngStream { rng: StdRng::seed_from_u64(mixed) }
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        if lo == hi {
            return lo;
        }
        self.rng.gen_range(lo..hi)
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        self.rng.gen_range(lo..hi)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.rng.gen::<f64>() < p
    }

    /// Access the underlying RNG for anything else.
    pub fn inner(&mut self) -> &mut impl Rng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = RngStream::derive(42, "src/0");
        let mut b = RngStream::derive(42, "src/0");
        for _ in 0..100 {
            assert_eq!(a.f64().to_bits(), b.f64().to_bits());
        }
    }

    #[test]
    fn different_labels_differ() {
        let mut a = RngStream::derive(42, "src/0");
        let mut b = RngStream::derive(42, "src/1");
        let va: Vec<u64> = (0..8).map(|_| a.f64().to_bits()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.f64().to_bits()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = RngStream::derive(1, "x");
        let mut b = RngStream::derive(2, "x");
        let va: Vec<u64> = (0..8).map(|_| a.f64().to_bits()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.f64().to_bits()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn sub_streams_independent() {
        let mut a = RngStream::derive_sub(7, "vbr", 0);
        let mut b = RngStream::derive_sub(7, "vbr", 1);
        let va: Vec<u64> = (0..8).map(|_| a.f64().to_bits()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.f64().to_bits()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn range_bounds_hold() {
        let mut r = RngStream::derive(9, "range");
        for _ in 0..1000 {
            let v = r.range_f64(2.0, 3.0);
            assert!((2.0..3.0).contains(&v));
            let u = r.range_u64(5, 10);
            assert!((5..10).contains(&u));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = RngStream::derive(9, "chance");
        for _ in 0..100 {
            assert!(!r.chance(0.0));
            assert!(r.chance(1.0));
        }
    }
}
