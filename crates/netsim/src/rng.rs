//! Deterministic per-component random-number streams.
//!
//! Every stochastic component (each VBR source, each receiver's backoff
//! timer, …) gets its own [`RngStream`] derived from the master seed and a
//! stable component label. Streams are therefore independent of the order in
//! which components are created or fire, which keeps sweeps comparable: the
//! traffic a source generates does not change when an unrelated receiver is
//! added to the scenario.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A named, seeded random stream.
pub struct RngStream {
    rng: StdRng,
}

/// Stable 64-bit FNV-1a hash used to mix labels into the master seed.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The splitmix64 finalizer: a full-avalanche 64-bit mix (every input bit
/// flips each output bit with probability ~1/2).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Derive an independent seed for the stream named `(stream, index)` from a
/// master `seed`.
///
/// Each of the three inputs passes through a [`splitmix64`] round before the
/// next is folded in, so related inputs land on unrelated outputs. This is
/// the supported way to hand sub-seeds to scenario components (the
/// controller, each source, each receiver); the ad-hoc XOR folds it replaced
/// (`seed ^ 0xc0f1`, `seed ^ (0x9e37 + i * 0x61c8)`) kept streams a constant
/// XOR apart, so an adversarial pair of base seeds — exactly the kind a
/// campaign's seed-index sweep enumerates — could make, say, run A's
/// receiver stream coincide bit-for-bit with run B's controller stream.
pub fn derive_stream_seed(seed: u64, stream: &str, index: u64) -> u64 {
    let mut z = splitmix64(seed);
    z = splitmix64(z ^ fnv1a(stream.as_bytes()));
    splitmix64(z ^ index)
}

impl RngStream {
    /// Derive a stream from `master_seed` and a stable `label`.
    pub fn derive(master_seed: u64, label: &str) -> Self {
        let mixed = master_seed ^ fnv1a(label.as_bytes()).rotate_left(17);
        RngStream { rng: StdRng::seed_from_u64(mixed) }
    }

    /// Derive a sub-stream, e.g. one per layer of a source.
    pub fn derive_sub(master_seed: u64, label: &str, index: u64) -> Self {
        let mixed = master_seed
            ^ fnv1a(label.as_bytes()).rotate_left(17)
            ^ index.wrapping_mul(0x9e3779b97f4a7c15);
        RngStream { rng: StdRng::seed_from_u64(mixed) }
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        if lo == hi {
            return lo;
        }
        self.rng.gen_range(lo..hi)
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        self.rng.gen_range(lo..hi)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.rng.gen::<f64>() < p
    }

    /// Access the underlying RNG for anything else.
    pub fn inner(&mut self) -> &mut impl Rng {
        &mut self.rng
    }

    /// Capture the generator's raw state for checkpointing.
    pub fn state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Rebuild a stream from a previously captured [`Self::state`]. The
    /// restored stream continues the exact draw sequence of the original.
    pub fn from_state(s: [u64; 4]) -> Self {
        RngStream { rng: StdRng::from_state(s) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = RngStream::derive(42, "src/0");
        let mut b = RngStream::derive(42, "src/0");
        for _ in 0..100 {
            assert_eq!(a.f64().to_bits(), b.f64().to_bits());
        }
    }

    #[test]
    fn different_labels_differ() {
        let mut a = RngStream::derive(42, "src/0");
        let mut b = RngStream::derive(42, "src/1");
        let va: Vec<u64> = (0..8).map(|_| a.f64().to_bits()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.f64().to_bits()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = RngStream::derive(1, "x");
        let mut b = RngStream::derive(2, "x");
        let va: Vec<u64> = (0..8).map(|_| a.f64().to_bits()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.f64().to_bits()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn sub_streams_independent() {
        let mut a = RngStream::derive_sub(7, "vbr", 0);
        let mut b = RngStream::derive_sub(7, "vbr", 1);
        let va: Vec<u64> = (0..8).map(|_| a.f64().to_bits()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.f64().to_bits()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn range_bounds_hold() {
        let mut r = RngStream::derive(9, "range");
        for _ in 0..1000 {
            let v = r.range_f64(2.0, 3.0);
            assert!((2.0..3.0).contains(&v));
            let u = r.range_u64(5, 10);
            assert!((5..10).contains(&u));
        }
    }

    #[test]
    fn stream_seeds_are_deterministic_and_distinct() {
        let a = derive_stream_seed(42, "receiver", 0);
        assert_eq!(a, derive_stream_seed(42, "receiver", 0));
        assert_ne!(a, derive_stream_seed(42, "receiver", 1));
        assert_ne!(a, derive_stream_seed(42, "controller", 0));
        assert_ne!(a, derive_stream_seed(43, "receiver", 0));
    }

    /// Regression for the XOR-fold collisions: under the old scheme
    /// (`seed ^ const`, `seed ^ (0x9e37 + i * 0x61c8)`), base seeds a
    /// constant XOR apart made streams of *different roles in different
    /// runs* coincide exactly — e.g. seed `s` receiver 0 vs seed
    /// `s ^ 0x9e37 ^ 0xc0f1` controller. A campaign sweeping a dense
    /// seed-index hits such pairs routinely. The derived seeds must be
    /// pairwise distinct across a dense grid of adversarial base seeds,
    /// roles, and indices.
    #[test]
    fn no_collisions_across_adversarial_seed_grid() {
        let old_receiver = |seed: u64, i: u64| seed ^ (0x9e37 + i * 0x61c8);
        let old_controller = |seed: u64| seed ^ 0xc0f1;
        // Demonstrate the old scheme's cross-run collision.
        let s = 7u64;
        let s2 = s ^ 0x9e37 ^ 0xc0f1;
        assert_eq!(old_receiver(s, 0), old_controller(s2), "old XOR fold collided");

        // Adversarial bases: dense, plus each base XORed with the old
        // scheme's constants (deduplicated — the grid overlaps itself).
        let mut seeds = std::collections::HashSet::new();
        for base in 0..64u64 {
            seeds.extend([base, base ^ 0xc0f1, base ^ 0xc0f2, base ^ 0x9e37, base ^ 0x61c8]);
        }
        let mut seen = std::collections::HashSet::new();
        for &seed in &seeds {
            for stream in ["controller", "source", "receiver", "chaos-plan"] {
                for index in 0..8u64 {
                    let d = derive_stream_seed(seed, stream, index);
                    assert!(seen.insert(d), "collision at (seed {seed}, {stream}, {index})");
                }
            }
        }
    }

    #[test]
    fn state_roundtrip_resumes_the_stream() {
        let mut a = RngStream::derive(11, "ckpt");
        for _ in 0..37 {
            a.f64();
        }
        let mut b = RngStream::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.f64().to_bits(), b.f64().to_bits());
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = RngStream::derive(9, "chance");
        for _ in 0..100 {
            assert!(!r.chance(0.0));
            assert!(r.chance(1.0));
        }
    }
}
