//! Point-to-point links with bandwidth, propagation delay, and a drop-tail
//! FIFO queue — the loss model the paper evaluates against ("a drop-tail
//! policy was used at all nodes").
//!
//! A physical link is duplex: it is created as a pair of independent
//! **directed** links, each with its own transmitter and queue. Packet
//! transmission is store-and-forward: a packet occupies the transmitter for
//! its serialization time, then crosses the wire in the propagation delay,
//! and arrives at the far node. Packets that find the transmitter busy wait
//! in the queue; packets that find the queue full are dropped.
//!
//! Links never touch packet payloads: queues, the transmitter, and the wire
//! hold [`QueuedPacket`] records (slab id + the size and layer the queueing
//! disciplines need). The wire is a FIFO of `(arrival time, id)` pairs
//! drained by a single self-rescheduling `LinkDeliver` event per link, so a
//! busy link keeps one delivery entry in the event queue no matter how many
//! packets are mid-flight.

use crate::node::NodeId;
use crate::packet::PacketId;
use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Index of a **directed** link.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DirLinkId(pub u32);

/// What happens when a packet arrives at a full queue.
///
/// The paper evaluates drop-tail ("a drop-tail policy was used at all
/// nodes"); the layer-priority discipline implements the network-based
/// priority-dropping alternative it cites (Bajaj, Breslau & Shenker): on
/// overflow, evict the queued media packet of the **highest layer** — the
/// least valuable in a cumulative layering — in favour of lower layers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QueueDiscipline {
    /// FIFO, arrivals at a full queue are dropped.
    #[default]
    DropTail,
    /// FIFO, but overflow evicts the queued packet with the highest media
    /// layer (ties: latest arrival). Non-media packets count as layer 0.
    PriorityDrop,
}

/// Parameters for one duplex link.
#[derive(Clone, Copy, Debug)]
pub struct LinkConfig {
    /// Capacity in bits per second (per direction).
    pub bandwidth_bps: f64,
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Drop-tail queue limit, in packets, per direction (excluding the
    /// packet in transmission).
    pub queue_packets: usize,
    /// Overflow behaviour.
    pub discipline: QueueDiscipline,
    /// Independent per-packet corruption probability (bit-error model);
    /// corrupted packets are counted and discarded at the receiving end of
    /// the link. Lets experiments distinguish congestion loss from random
    /// loss (§V "bursty losses vs sustained congestion").
    pub random_loss: f64,
}

impl LinkConfig {
    /// Convenience constructor with capacity in kilobits per second and the
    /// paper's default 200 ms latency. The 10-packet drop-tail queue keeps
    /// the queueing delay at a 150 kb/s bottleneck near half a second, so a
    /// failed layer probe shows up in loss reports within one interval.
    pub fn kbps(kbps: f64) -> Self {
        LinkConfig {
            bandwidth_bps: kbps * 1000.0,
            delay: SimDuration::from_millis(200),
            queue_packets: 10,
            discipline: QueueDiscipline::DropTail,
            random_loss: 0.0,
        }
    }

    /// Override the propagation delay.
    pub fn with_delay(mut self, delay: SimDuration) -> Self {
        self.delay = delay;
        self
    }

    /// Override the queue limit.
    pub fn with_queue(mut self, packets: usize) -> Self {
        self.queue_packets = packets;
        self
    }

    /// Override the overflow discipline.
    pub fn with_discipline(mut self, discipline: QueueDiscipline) -> Self {
        self.discipline = discipline;
        self
    }

    /// Add independent per-packet random loss.
    pub fn with_random_loss(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "loss probability must be in [0, 1)");
        self.random_loss = p;
        self
    }
}

/// Cumulative counters for one directed link.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets fully transmitted.
    pub tx_packets: u64,
    /// Bytes fully transmitted.
    pub tx_bytes: u64,
    /// Packets dropped at the queue (tail or priority eviction).
    pub dropped_packets: u64,
    /// Packets corrupted on the wire (random-loss model).
    pub corrupted_packets: u64,
    /// Packets lost to a fault: arrivals refused while the link is failed,
    /// queues flushed by an outage (link failure or transmitting-router
    /// crash — both fault kinds account flushes identically), and
    /// transmissions aborted by a mid-serialization outage. A subset of
    /// `dropped_packets`, kept separately so fault post-mortems can tell
    /// congestion loss from outage loss per link. Congestion (queue-full)
    /// loss is the difference `dropped_packets - down_dropped_packets`.
    pub down_dropped_packets: u64,
    /// Bytes dropped at the queue tail.
    pub dropped_bytes: u64,
    /// Packets offered to the link (tx + queued + dropped).
    pub offered_packets: u64,
    /// Most packets ever waiting in the queue at once (excluding the one in
    /// transmission) — the profiler's per-link queue high-water mark.
    pub queue_hwm: u64,
}

impl LinkStats {
    /// Account a packet this link delivered into a crashed node. The link
    /// did complete the transmission (`tx_*` already counted it), but the
    /// payload was lost on arrival; charging the loss here keeps drop
    /// accounting attributable to the link's owning shard instead of
    /// vanishing into a global unowned bucket.
    pub fn count_dead_arrival(&mut self, bytes: u32) {
        self.dropped_packets += 1;
        self.down_dropped_packets += 1;
        self.dropped_bytes += bytes as u64;
    }

    /// Fraction of offered packets that were dropped.
    pub fn drop_rate(&self) -> f64 {
        if self.offered_packets == 0 {
            0.0
        } else {
            self.dropped_packets as f64 / self.offered_packets as f64
        }
    }
}

/// What a link knows about a packet: its slab id plus the two fields the
/// queueing disciplines read. 16 bytes, `Copy`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueuedPacket {
    /// Slab handle; the simulator resolves it on delivery.
    pub id: PacketId,
    /// Wire size in bytes (drives serialization time and drop accounting).
    pub size: u32,
    /// Media layer (control packets rank as layer 0).
    pub layer: u8,
}

/// Result of offering a packet to a link.
#[derive(Debug, PartialEq, Eq)]
pub enum Enqueue {
    /// Transmission started immediately; `LinkTxDone` fires after the
    /// returned serialization time.
    StartTx(SimDuration),
    /// Packet queued behind the current transmission. Under
    /// [`QueueDiscipline::PriorityDrop`] this may have evicted a queued
    /// packet — the caller must release (and may trace) the victim.
    Queued { evicted: Option<QueuedPacket> },
    /// Queue full; the offered packet was dropped (already counted).
    Dropped,
}

/// One directed link.
///
/// `repr(C)` with the fields every event touches (endpoints, liveness, the
/// transmitter, timing parameters, the serialization memo) packed at the
/// front: a steady-state simulation walks `Link` structs in effectively
/// random order, so the per-event working set is cache lines, and the
/// layout keeps the `tx_done`/`enqueue` path inside the first lines.
#[repr(C)]
pub struct Link {
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// False while the link is failed: it accepts nothing and carries
    /// nothing (fault injection).
    up: bool,
    discipline: QueueDiscipline,
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Capacity in bits per second.
    pub bandwidth_bps: f64,
    /// Last `(size, serialization time)` computed — steady traffic repeats
    /// one packet size per link, so this turns the per-hop f64 division
    /// into a compare. Memoization is exact: on a hit the cached result is
    /// bit-identical to recomputing it.
    ser_memo: (u32, SimDuration),
    in_flight: Option<QueuedPacket>,
    /// Cumulative statistics.
    pub stats: LinkStats,
    /// Per-packet corruption probability.
    pub random_loss: f64,
    queue_limit: usize,
    queue: VecDeque<QueuedPacket>,
    /// Packets crossing the wire: `(arrival time, id)`, FIFO (the constant
    /// propagation delay keeps arrival times monotone). Exactly one
    /// `LinkDeliver` event is pending iff this is non-empty.
    wire: VecDeque<(SimTime, PacketId)>,
}

impl Link {
    pub fn new(from: NodeId, to: NodeId, cfg: &LinkConfig) -> Self {
        assert!(cfg.bandwidth_bps > 0.0, "link bandwidth must be positive");
        Link {
            from,
            to,
            up: true,
            discipline: cfg.discipline,
            delay: cfg.delay,
            bandwidth_bps: cfg.bandwidth_bps,
            ser_memo: (0, SimDuration::ZERO),
            in_flight: None,
            stats: LinkStats::default(),
            random_loss: cfg.random_loss,
            queue_limit: cfg.queue_packets,
            queue: VecDeque::with_capacity(cfg.queue_packets.min(64)),
            wire: VecDeque::new(),
        }
    }

    /// Serialization time of a `size`-byte packet, memoized on the last
    /// distinct size seen (exact — a hit returns the identical value).
    #[inline]
    fn ser_time(&mut self, size: u32) -> SimDuration {
        if self.ser_memo.0 != size {
            self.ser_memo = (size, SimDuration::serialization(size as u64, self.bandwidth_bps));
        }
        self.ser_memo.1
    }

    /// Offer a packet to this link.
    pub fn enqueue(&mut self, packet: QueuedPacket) -> Enqueue {
        self.stats.offered_packets += 1;
        if !self.up {
            self.drop_counted(packet);
            self.stats.down_dropped_packets += 1;
            return Enqueue::Dropped;
        }
        if self.in_flight.is_none() {
            let ser = self.ser_time(packet.size);
            self.in_flight = Some(packet);
            Enqueue::StartTx(ser)
        } else if self.queue.len() < self.queue_limit {
            self.queue.push_back(packet);
            self.stats.queue_hwm = self.stats.queue_hwm.max(self.queue.len() as u64);
            Enqueue::Queued { evicted: None }
        } else {
            match self.discipline {
                QueueDiscipline::DropTail => {
                    self.drop_counted(packet);
                    Enqueue::Dropped
                }
                QueueDiscipline::PriorityDrop => {
                    // Evict the queued packet of the highest layer if it is
                    // strictly less valuable than the arrival; otherwise the
                    // arrival itself is the least valuable and is dropped.
                    let victim = self
                        .queue
                        .iter()
                        .enumerate()
                        .rev() // latest arrival loses ties
                        .max_by_key(|(_, p)| p.layer)
                        .map(|(i, p)| (i, p.layer));
                    match victim {
                        Some((i, vl)) if vl > packet.layer => {
                            let evicted = self.queue.remove(i).expect("victim index valid");
                            self.drop_counted(evicted);
                            self.queue.push_back(packet);
                            Enqueue::Queued { evicted: Some(evicted) }
                        }
                        _ => {
                            self.drop_counted(packet);
                            Enqueue::Dropped
                        }
                    }
                }
            }
        }
    }

    fn drop_counted(&mut self, packet: QueuedPacket) {
        self.stats.dropped_packets += 1;
        self.stats.dropped_bytes += packet.size as u64;
    }

    /// The current transmission finished. Returns the packet that now
    /// crosses the wire (arriving after [`Link::delay`]) and, if another
    /// packet was waiting, the serialization time of the next transmission.
    pub fn tx_done(&mut self) -> (QueuedPacket, Option<SimDuration>) {
        let sent = self.in_flight.take().expect("tx_done with idle transmitter");
        self.stats.tx_packets += 1;
        self.stats.tx_bytes += sent.size as u64;
        let next = self.queue.pop_front().map(|p| {
            let ser = self.ser_time(p.size);
            self.in_flight = Some(p);
            ser
        });
        (sent, next)
    }

    /// Fail the link: flush the queue and stop accepting traffic. The packet
    /// being serialized, if any, stays on the transmitter — the simulator
    /// judges it against the link state when its `LinkTxDone` fires — and
    /// packets already past the transmitter survive on the wire (micro-flaps
    /// shorter than the remaining flight are never noticed). Flushed packets
    /// are appended to `flushed` so the caller can release their slab
    /// references and trace the drops; returns how many were flushed.
    pub fn set_down(&mut self, flushed: &mut Vec<QueuedPacket>) -> usize {
        self.up = false;
        self.flush_outage(flushed)
    }

    /// Drop every queued packet with **outage accounting** — the shared
    /// flush path for both fault kinds (`LinkDown` here via
    /// [`Link::set_down`], `NodeCrash` when the transmitting router's
    /// buffers vanish), so `LinkStats` drop totals agree between them:
    /// every flushed packet counts in both `dropped_packets` and
    /// `down_dropped_packets`. The transmitter keeps its current packet;
    /// the simulator judges it at `LinkTxDone` time.
    pub fn flush_outage(&mut self, flushed: &mut Vec<QueuedPacket>) -> usize {
        let n = self.queue.len();
        while let Some(p) = self.queue.pop_front() {
            self.drop_counted(p);
            self.stats.down_dropped_packets += 1;
            flushed.push(p);
        }
        n
    }

    /// Repair the link: it accepts traffic again (with an empty queue).
    pub fn set_up(&mut self) {
        self.up = true;
    }

    /// Whether the link is currently carrying traffic.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Abort the in-flight transmission (link or transmitting router went
    /// down before serialization finished): the packet counts as dropped —
    /// as outage loss, since aborts only happen on a fault — and nothing
    /// arrives. Returns it so the caller can release its slab reference;
    /// `None` when the transmitter is idle.
    pub fn abort_tx(&mut self) -> Option<QueuedPacket> {
        let aborted = self.in_flight.take();
        if let Some(p) = aborted {
            self.drop_counted(p);
            self.stats.down_dropped_packets += 1;
        }
        aborted
    }

    /// Put a transmitted packet on the wire, arriving at `at`. Returns true
    /// when the wire was empty — the caller must then schedule the link's
    /// `LinkDeliver` event (otherwise one is already pending).
    pub fn wire_push(&mut self, at: SimTime, id: PacketId) -> bool {
        debug_assert!(self.wire.back().is_none_or(|&(t, _)| t <= at), "wire must stay FIFO");
        let was_empty = self.wire.is_empty();
        self.wire.push_back((at, id));
        was_empty
    }

    /// Pop the head-of-wire packet if it has arrived by `now`.
    pub fn wire_pop_due(&mut self, now: SimTime) -> Option<PacketId> {
        if self.wire.front().is_some_and(|&(t, _)| t <= now) {
            self.wire.pop_front().map(|(_, id)| id)
        } else {
            None
        }
    }

    /// Arrival time of the next wire packet, if any.
    pub fn wire_next(&self) -> Option<SimTime> {
        self.wire.front().map(|&(t, _)| t)
    }

    /// Packets currently crossing the wire.
    pub fn wire_len(&self) -> usize {
        self.wire.len()
    }

    /// Packets currently waiting (excluding the one in transmission).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// True if the transmitter is serializing a packet.
    pub fn is_busy(&self) -> bool {
        self.in_flight.is_some()
    }

    /// Time to serialize `bytes` on this link.
    pub fn serialization_time(&self, bytes: u64) -> SimDuration {
        SimDuration::serialization(bytes, self.bandwidth_bps)
    }

    /// Average utilization over `[start, now]` from cumulative counters.
    pub fn utilization(&self, start: SimTime, now: SimTime) -> f64 {
        let secs = now.since(start).as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        (self.stats.tx_bytes as f64 * 8.0) / (self.bandwidth_bps * secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketId;

    /// Links never dereference ids, so tests can mint synthetic ones.
    fn qp(n: u32, size: u32, layer: u8) -> QueuedPacket {
        QueuedPacket { id: PacketId::new(n, 0), size, layer }
    }

    fn pkt(size: u32) -> QueuedPacket {
        qp(0, size, 0)
    }

    fn link(kbps: f64, queue: usize) -> Link {
        let cfg = LinkConfig::kbps(kbps).with_queue(queue);
        Link::new(NodeId(0), NodeId(1), &cfg)
    }

    fn queued(e: Enqueue) -> bool {
        matches!(e, Enqueue::Queued { .. })
    }

    #[test]
    fn idle_link_starts_tx_immediately() {
        let mut l = link(32.0, 4);
        match l.enqueue(pkt(1000)) {
            Enqueue::StartTx(d) => assert_eq!(d, SimDuration::from_millis(250)),
            other => panic!("expected StartTx, got {other:?}"),
        }
        assert!(l.is_busy());
        assert_eq!(l.queue_len(), 0);
    }

    #[test]
    fn busy_link_queues_then_drops() {
        let mut l = link(32.0, 2);
        assert!(matches!(l.enqueue(pkt(1000)), Enqueue::StartTx(_)));
        assert!(queued(l.enqueue(pkt(1000))));
        assert!(queued(l.enqueue(pkt(1000))));
        assert_eq!(l.enqueue(pkt(1000)), Enqueue::Dropped);
        assert_eq!(l.stats.dropped_packets, 1);
        assert_eq!(l.stats.offered_packets, 4);
        assert_eq!(l.queue_len(), 2);
    }

    #[test]
    fn tx_done_advances_queue_fifo() {
        let mut l = link(32.0, 4);
        assert!(matches!(l.enqueue(pkt(500)), Enqueue::StartTx(_)));
        l.enqueue(pkt(1000));
        let (sent, next) = l.tx_done();
        assert_eq!(sent.size, 500);
        assert_eq!(next, Some(SimDuration::from_millis(250)));
        assert!(l.is_busy());
        let (sent2, next2) = l.tx_done();
        assert_eq!(sent2.size, 1000);
        assert_eq!(next2, None);
        assert!(!l.is_busy());
        assert_eq!(l.stats.tx_packets, 2);
        assert_eq!(l.stats.tx_bytes, 1500);
    }

    #[test]
    #[should_panic]
    fn tx_done_on_idle_panics() {
        let mut l = link(32.0, 4);
        let _ = l.tx_done();
    }

    #[test]
    fn drop_rate_computation() {
        let mut l = link(32.0, 0);
        assert!(matches!(l.enqueue(pkt(1000)), Enqueue::StartTx(_)));
        assert_eq!(l.enqueue(pkt(1000)), Enqueue::Dropped);
        assert!((l.stats.drop_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn priority_drop_evicts_highest_layer() {
        let cfg =
            LinkConfig::kbps(32.0).with_queue(2).with_discipline(QueueDiscipline::PriorityDrop);
        let mut l = Link::new(NodeId(0), NodeId(1), &cfg);
        let mk = |n: u32, layer: u8| qp(n, 1000, layer);
        assert!(matches!(l.enqueue(mk(0, 0)), Enqueue::StartTx(_)));
        assert!(queued(l.enqueue(mk(1, 3))));
        assert!(queued(l.enqueue(mk(2, 5))));
        // Queue full; a base-layer packet evicts the layer-5 one — and the
        // victim surfaces so the simulator can release its slab reference.
        match l.enqueue(mk(3, 0)) {
            Enqueue::Queued { evicted: Some(v) } => assert_eq!(v.layer, 5),
            other => panic!("expected eviction, got {other:?}"),
        }
        assert_eq!(l.stats.dropped_packets, 1);
        // A layer-6 arrival is itself the least valuable: dropped.
        assert_eq!(l.enqueue(mk(4, 6)), Enqueue::Dropped);
        assert_eq!(l.stats.dropped_packets, 2);
        // Drain and verify the surviving layers.
        let mut layers = Vec::new();
        let (first, mut more) = l.tx_done();
        layers.push(first.layer);
        while more.is_some() {
            let (p, next) = l.tx_done();
            layers.push(p.layer);
            more = next;
        }
        assert_eq!(layers, vec![0, 3, 0]);
    }

    #[test]
    fn priority_drop_protects_control_packets() {
        let cfg =
            LinkConfig::kbps(32.0).with_queue(1).with_discipline(QueueDiscipline::PriorityDrop);
        let mut l = Link::new(NodeId(0), NodeId(1), &cfg);
        let media = |n| qp(n, 1000, 4);
        let ctrl = qp(9, 64, 0); // control packets rank as layer 0
        assert!(matches!(l.enqueue(media(0)), Enqueue::StartTx(_)));
        assert!(queued(l.enqueue(media(1))));
        // Control packet (layer 0) evicts the queued layer-4 media packet.
        match l.enqueue(ctrl) {
            Enqueue::Queued { evicted: Some(v) } => assert_eq!(v.layer, 4),
            other => panic!("expected eviction, got {other:?}"),
        }
        assert_eq!(l.stats.dropped_packets, 1);
    }

    #[test]
    fn downed_link_counts_outage_drops_separately() {
        let mut l = link(32.0, 4);
        assert!(matches!(l.enqueue(pkt(1000)), Enqueue::StartTx(_)));
        assert!(queued(l.enqueue(pkt(1000))));
        // Failure flushes the one queued packet...
        let mut flushed = Vec::new();
        assert_eq!(l.set_down(&mut flushed), 1);
        assert_eq!(flushed.len(), 1);
        assert_eq!(l.stats.down_dropped_packets, 1);
        // ...and refusals while down also count as outage loss.
        assert_eq!(l.enqueue(pkt(1000)), Enqueue::Dropped);
        assert_eq!(l.stats.down_dropped_packets, 2);
        assert_eq!(l.stats.dropped_packets, 2, "outage drops are a subset of all drops");
        // A plain congestion drop after repair moves only the total.
        l.set_up();
        assert!(queued(l.enqueue(pkt(1000)))); // transmitter still busy
        let mut l2 = link(32.0, 0);
        assert!(matches!(l2.enqueue(pkt(1000)), Enqueue::StartTx(_)));
        assert_eq!(l2.enqueue(pkt(1000)), Enqueue::Dropped);
        assert_eq!(l2.stats.down_dropped_packets, 0);
        assert_eq!(l2.stats.dropped_packets, 1);
    }

    /// Satellite regression: a link-down flush and a router-crash flush of
    /// identical queue states must leave identical `LinkStats` — both fault
    /// kinds go through the unified outage-flush path.
    #[test]
    fn outage_flush_accounting_identical_for_both_fault_kinds() {
        let fill = |l: &mut Link| {
            assert!(matches!(l.enqueue(qp(0, 1000, 0)), Enqueue::StartTx(_)));
            assert!(queued(l.enqueue(qp(1, 700, 1))));
            assert!(queued(l.enqueue(qp(2, 300, 2))));
        };
        // Fault kind 1: the link itself fails.
        let mut by_link_down = link(32.0, 4);
        fill(&mut by_link_down);
        let mut flushed_a = Vec::new();
        by_link_down.set_down(&mut flushed_a);
        // Fault kind 2: the transmitting router crashes (link stays up).
        let mut by_node_crash = link(32.0, 4);
        fill(&mut by_node_crash);
        let mut flushed_b = Vec::new();
        by_node_crash.flush_outage(&mut flushed_b);
        assert_eq!(flushed_a, flushed_b);
        assert_eq!(by_link_down.stats, by_node_crash.stats);
        assert_eq!(by_link_down.stats.dropped_packets, 2);
        assert_eq!(by_link_down.stats.down_dropped_packets, 2);
        assert_eq!(by_link_down.stats.dropped_bytes, 1000);
    }

    #[test]
    fn abort_tx_returns_the_victim() {
        let mut l = link(32.0, 4);
        assert!(l.abort_tx().is_none());
        assert!(matches!(l.enqueue(qp(7, 1000, 2)), Enqueue::StartTx(_)));
        let aborted = l.abort_tx().expect("in-flight packet");
        assert_eq!(aborted, qp(7, 1000, 2));
        assert_eq!(l.stats.dropped_packets, 1);
        assert_eq!(l.stats.down_dropped_packets, 1, "an abort is fault loss, not congestion");
        assert!(!l.is_busy());
    }

    #[test]
    fn queue_high_water_mark_tracks_peak_occupancy() {
        let mut l = link(32.0, 4);
        assert_eq!(l.stats.queue_hwm, 0);
        assert!(matches!(l.enqueue(pkt(1000)), Enqueue::StartTx(_)));
        assert_eq!(l.stats.queue_hwm, 0, "the in-flight packet is not queue occupancy");
        assert!(queued(l.enqueue(pkt(1000))));
        assert!(queued(l.enqueue(pkt(1000))));
        assert_eq!(l.stats.queue_hwm, 2);
        // Draining does not lower the mark.
        let _ = l.tx_done();
        let _ = l.tx_done();
        assert_eq!(l.queue_len(), 0);
        assert_eq!(l.stats.queue_hwm, 2);
    }

    #[test]
    fn wire_fifo_and_deliver_scheduling_contract() {
        let mut l = link(32.0, 4);
        let t1 = SimTime::from_millis(100);
        let t2 = SimTime::from_millis(150);
        // First push: wire was empty, caller must schedule LinkDeliver.
        assert!(l.wire_push(t1, PacketId::new(1, 0)));
        // Second push: a deliver event is already pending.
        assert!(!l.wire_push(t2, PacketId::new(2, 0)));
        assert_eq!(l.wire_len(), 2);
        assert_eq!(l.wire_next(), Some(t1));
        // Nothing is due before its arrival time.
        assert!(l.wire_pop_due(SimTime::from_millis(99)).is_none());
        assert_eq!(l.wire_pop_due(t1), Some(PacketId::new(1, 0)));
        assert!(l.wire_pop_due(t1).is_none(), "head not yet due");
        assert_eq!(l.wire_next(), Some(t2));
        assert_eq!(l.wire_pop_due(SimTime::from_secs(1)), Some(PacketId::new(2, 0)));
        assert_eq!(l.wire_len(), 0);
    }

    #[test]
    fn utilization_from_counters() {
        let mut l = link(80.0, 4); // 80 kbit/s
        assert!(matches!(l.enqueue(pkt(1000)), Enqueue::StartTx(_)));
        let _ = l.tx_done();
        // 8000 bits sent; over 1 s at 80_000 bit/s => 10% utilization.
        let u = l.utilization(SimTime::ZERO, SimTime::from_secs(1));
        assert!((u - 0.1).abs() < 1e-9);
    }
}
