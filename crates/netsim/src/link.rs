//! Point-to-point links with bandwidth, propagation delay, and a drop-tail
//! FIFO queue — the loss model the paper evaluates against ("a drop-tail
//! policy was used at all nodes").
//!
//! A physical link is duplex: it is created as a pair of independent
//! **directed** links, each with its own transmitter and queue. Packet
//! transmission is store-and-forward: a packet occupies the transmitter for
//! its serialization time, then crosses the wire in the propagation delay,
//! and arrives at the far node. Packets that find the transmitter busy wait
//! in the queue; packets that find the queue full are dropped.

use crate::node::NodeId;
use crate::packet::{Packet, Payload};
use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Index of a **directed** link.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DirLinkId(pub u32);

/// What happens when a packet arrives at a full queue.
///
/// The paper evaluates drop-tail ("a drop-tail policy was used at all
/// nodes"); the layer-priority discipline implements the network-based
/// priority-dropping alternative it cites (Bajaj, Breslau & Shenker): on
/// overflow, evict the queued media packet of the **highest layer** — the
/// least valuable in a cumulative layering — in favour of lower layers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QueueDiscipline {
    /// FIFO, arrivals at a full queue are dropped.
    #[default]
    DropTail,
    /// FIFO, but overflow evicts the queued packet with the highest media
    /// layer (ties: latest arrival). Non-media packets count as layer 0.
    PriorityDrop,
}

/// Parameters for one duplex link.
#[derive(Clone, Copy, Debug)]
pub struct LinkConfig {
    /// Capacity in bits per second (per direction).
    pub bandwidth_bps: f64,
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Drop-tail queue limit, in packets, per direction (excluding the
    /// packet in transmission).
    pub queue_packets: usize,
    /// Overflow behaviour.
    pub discipline: QueueDiscipline,
    /// Independent per-packet corruption probability (bit-error model);
    /// corrupted packets are counted and discarded at the receiving end of
    /// the link. Lets experiments distinguish congestion loss from random
    /// loss (§V "bursty losses vs sustained congestion").
    pub random_loss: f64,
}

impl LinkConfig {
    /// Convenience constructor with capacity in kilobits per second and the
    /// paper's default 200 ms latency. The 10-packet drop-tail queue keeps
    /// the queueing delay at a 150 kb/s bottleneck near half a second, so a
    /// failed layer probe shows up in loss reports within one interval.
    pub fn kbps(kbps: f64) -> Self {
        LinkConfig {
            bandwidth_bps: kbps * 1000.0,
            delay: SimDuration::from_millis(200),
            queue_packets: 10,
            discipline: QueueDiscipline::DropTail,
            random_loss: 0.0,
        }
    }

    /// Override the propagation delay.
    pub fn with_delay(mut self, delay: SimDuration) -> Self {
        self.delay = delay;
        self
    }

    /// Override the queue limit.
    pub fn with_queue(mut self, packets: usize) -> Self {
        self.queue_packets = packets;
        self
    }

    /// Override the overflow discipline.
    pub fn with_discipline(mut self, discipline: QueueDiscipline) -> Self {
        self.discipline = discipline;
        self
    }

    /// Add independent per-packet random loss.
    pub fn with_random_loss(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "loss probability must be in [0, 1)");
        self.random_loss = p;
        self
    }
}

/// Cumulative counters for one directed link.
#[derive(Clone, Copy, Debug, Default)]
pub struct LinkStats {
    /// Packets fully transmitted.
    pub tx_packets: u64,
    /// Bytes fully transmitted.
    pub tx_bytes: u64,
    /// Packets dropped at the queue (tail or priority eviction).
    pub dropped_packets: u64,
    /// Packets corrupted on the wire (random-loss model).
    pub corrupted_packets: u64,
    /// Packets lost to the link being down: arrivals refused while failed
    /// plus the queue flushed at the moment of failure. A subset of
    /// `dropped_packets`, kept separately so fault post-mortems can tell
    /// congestion loss from outage loss per link.
    pub down_dropped_packets: u64,
    /// Bytes dropped at the queue tail.
    pub dropped_bytes: u64,
    /// Packets offered to the link (tx + queued + dropped).
    pub offered_packets: u64,
}

impl LinkStats {
    /// Fraction of offered packets that were dropped.
    pub fn drop_rate(&self) -> f64 {
        if self.offered_packets == 0 {
            0.0
        } else {
            self.dropped_packets as f64 / self.offered_packets as f64
        }
    }
}

/// One directed link.
pub struct Link {
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Capacity in bits per second.
    pub bandwidth_bps: f64,
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Per-packet corruption probability.
    pub random_loss: f64,
    discipline: QueueDiscipline,
    queue_limit: usize,
    queue: VecDeque<Packet>,
    in_flight: Option<Packet>,
    /// False while the link is failed: it accepts nothing and carries
    /// nothing (fault injection).
    up: bool,
    /// Cumulative statistics.
    pub stats: LinkStats,
}

/// The media layer a packet carries (control packets rank as layer 0, i.e.
/// most protected under priority dropping).
fn layer_of(p: &Packet) -> u8 {
    match p.payload {
        Payload::Media { layer, .. } => layer,
        Payload::Control(_) => 0,
    }
}

/// Result of offering a packet to a link.
#[derive(Debug, PartialEq, Eq)]
pub enum Enqueue {
    /// Transmission started immediately; `LinkTxDone` fires after the
    /// returned serialization time.
    StartTx(SimDuration),
    /// Packet queued behind the current transmission.
    Queued,
    /// Queue full; packet dropped.
    Dropped,
}

impl Link {
    pub fn new(from: NodeId, to: NodeId, cfg: &LinkConfig) -> Self {
        assert!(cfg.bandwidth_bps > 0.0, "link bandwidth must be positive");
        Link {
            from,
            to,
            bandwidth_bps: cfg.bandwidth_bps,
            delay: cfg.delay,
            random_loss: cfg.random_loss,
            discipline: cfg.discipline,
            queue_limit: cfg.queue_packets,
            queue: VecDeque::with_capacity(cfg.queue_packets.min(64)),
            in_flight: None,
            up: true,
            stats: LinkStats::default(),
        }
    }

    /// Offer a packet to this link.
    pub fn enqueue(&mut self, packet: Packet) -> Enqueue {
        self.stats.offered_packets += 1;
        if !self.up {
            self.drop_counted(&packet);
            self.stats.down_dropped_packets += 1;
            return Enqueue::Dropped;
        }
        if self.in_flight.is_none() {
            let ser = SimDuration::serialization(packet.size as u64, self.bandwidth_bps);
            self.in_flight = Some(packet);
            Enqueue::StartTx(ser)
        } else if self.queue.len() < self.queue_limit {
            self.queue.push_back(packet);
            Enqueue::Queued
        } else {
            match self.discipline {
                QueueDiscipline::DropTail => {
                    self.drop_counted(&packet);
                    Enqueue::Dropped
                }
                QueueDiscipline::PriorityDrop => {
                    // Evict the queued packet of the highest layer if it is
                    // strictly less valuable than the arrival; otherwise the
                    // arrival itself is the least valuable and is dropped.
                    let victim = self
                        .queue
                        .iter()
                        .enumerate()
                        .rev() // latest arrival loses ties
                        .max_by_key(|(_, p)| layer_of(p))
                        .map(|(i, p)| (i, layer_of(p)));
                    match victim {
                        Some((i, vl)) if vl > layer_of(&packet) => {
                            let evicted = self.queue.remove(i).expect("victim index valid");
                            self.drop_counted(&evicted);
                            self.queue.push_back(packet);
                            Enqueue::Queued
                        }
                        _ => {
                            self.drop_counted(&packet);
                            Enqueue::Dropped
                        }
                    }
                }
            }
        }
    }

    fn drop_counted(&mut self, packet: &Packet) {
        self.stats.dropped_packets += 1;
        self.stats.dropped_bytes += packet.size as u64;
    }

    /// The current transmission finished. Returns the packet that now
    /// crosses the wire (arriving after [`Link::delay`]) and, if another
    /// packet was waiting, the serialization time of the next transmission.
    pub fn tx_done(&mut self) -> (Packet, Option<SimDuration>) {
        let sent = self.in_flight.take().expect("tx_done with idle transmitter");
        self.stats.tx_packets += 1;
        self.stats.tx_bytes += sent.size as u64;
        let next = self.queue.pop_front().map(|p| {
            let ser = SimDuration::serialization(p.size as u64, self.bandwidth_bps);
            self.in_flight = Some(p);
            ser
        });
        (sent, next)
    }

    /// Fail the link: flush the queue (every flushed packet counts as a
    /// drop) and stop accepting traffic. The packet being serialized, if
    /// any, stays on the transmitter — the simulator judges it against the
    /// link state when its `LinkTxDone` fires. Returns the number of
    /// packets flushed.
    pub fn set_down(&mut self) -> usize {
        self.up = false;
        let flushed = self.flush_queue();
        self.stats.down_dropped_packets += flushed as u64;
        flushed
    }

    /// Drop every queued packet (counted), e.g. when the transmitting
    /// router crashes and its buffers vanish. The transmitter keeps its
    /// current packet; the simulator judges it at `LinkTxDone` time.
    pub fn flush_queue(&mut self) -> usize {
        let flushed = self.queue.len();
        while let Some(p) = self.queue.pop_front() {
            self.drop_counted(&p);
        }
        flushed
    }

    /// Repair the link: it accepts traffic again (with an empty queue).
    pub fn set_up(&mut self) {
        self.up = true;
    }

    /// Whether the link is currently carrying traffic.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Abort the in-flight transmission (link or transmitting router went
    /// down before serialization finished): the packet counts as dropped
    /// and nothing arrives. No-op when the transmitter is idle.
    pub fn abort_tx(&mut self) {
        if let Some(p) = self.in_flight.take() {
            self.stats.dropped_packets += 1;
            self.stats.dropped_bytes += p.size as u64;
        }
    }

    /// Packets currently waiting (excluding the one in transmission).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// True if the transmitter is serializing a packet.
    pub fn is_busy(&self) -> bool {
        self.in_flight.is_some()
    }

    /// Time to serialize `bytes` on this link.
    pub fn serialization_time(&self, bytes: u64) -> SimDuration {
        SimDuration::serialization(bytes, self.bandwidth_bps)
    }

    /// Average utilization over `[start, now]` from cumulative counters.
    pub fn utilization(&self, start: SimTime, now: SimTime) -> f64 {
        let secs = now.since(start).as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        (self.stats.tx_bytes as f64 * 8.0) / (self.bandwidth_bps * secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multicast::GroupId;
    use crate::packet::SessionId;

    fn pkt(size: u32) -> Packet {
        Packet::media(NodeId(0), GroupId(0), SessionId(0), 0, 0, size)
    }

    fn link(kbps: f64, queue: usize) -> Link {
        let cfg = LinkConfig::kbps(kbps).with_queue(queue);
        Link::new(NodeId(0), NodeId(1), &cfg)
    }

    #[test]
    fn idle_link_starts_tx_immediately() {
        let mut l = link(32.0, 4);
        match l.enqueue(pkt(1000)) {
            Enqueue::StartTx(d) => assert_eq!(d, SimDuration::from_millis(250)),
            other => panic!("expected StartTx, got {other:?}"),
        }
        assert!(l.is_busy());
        assert_eq!(l.queue_len(), 0);
    }

    #[test]
    fn busy_link_queues_then_drops() {
        let mut l = link(32.0, 2);
        assert!(matches!(l.enqueue(pkt(1000)), Enqueue::StartTx(_)));
        assert_eq!(l.enqueue(pkt(1000)), Enqueue::Queued);
        assert_eq!(l.enqueue(pkt(1000)), Enqueue::Queued);
        assert_eq!(l.enqueue(pkt(1000)), Enqueue::Dropped);
        assert_eq!(l.stats.dropped_packets, 1);
        assert_eq!(l.stats.offered_packets, 4);
        assert_eq!(l.queue_len(), 2);
    }

    #[test]
    fn tx_done_advances_queue_fifo() {
        let mut l = link(32.0, 4);
        let mut first = pkt(1000);
        first.size = 500; // distinguishable
        assert!(matches!(l.enqueue(first), Enqueue::StartTx(_)));
        l.enqueue(pkt(1000));
        let (sent, next) = l.tx_done();
        assert_eq!(sent.size, 500);
        assert_eq!(next, Some(SimDuration::from_millis(250)));
        assert!(l.is_busy());
        let (sent2, next2) = l.tx_done();
        assert_eq!(sent2.size, 1000);
        assert_eq!(next2, None);
        assert!(!l.is_busy());
        assert_eq!(l.stats.tx_packets, 2);
        assert_eq!(l.stats.tx_bytes, 1500);
    }

    #[test]
    #[should_panic]
    fn tx_done_on_idle_panics() {
        let mut l = link(32.0, 4);
        let _ = l.tx_done();
    }

    #[test]
    fn drop_rate_computation() {
        let mut l = link(32.0, 0);
        assert!(matches!(l.enqueue(pkt(1000)), Enqueue::StartTx(_)));
        assert_eq!(l.enqueue(pkt(1000)), Enqueue::Dropped);
        assert!((l.stats.drop_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn priority_drop_evicts_highest_layer() {
        let cfg =
            LinkConfig::kbps(32.0).with_queue(2).with_discipline(QueueDiscipline::PriorityDrop);
        let mut l = Link::new(NodeId(0), NodeId(1), &cfg);
        let mk = |layer: u8| Packet::media(NodeId(0), GroupId(0), SessionId(0), layer, 0, 1000);
        assert!(matches!(l.enqueue(mk(0)), Enqueue::StartTx(_)));
        assert_eq!(l.enqueue(mk(3)), Enqueue::Queued);
        assert_eq!(l.enqueue(mk(5)), Enqueue::Queued);
        // Queue full; a base-layer packet evicts the layer-5 one.
        assert_eq!(l.enqueue(mk(0)), Enqueue::Queued);
        assert_eq!(l.stats.dropped_packets, 1);
        // A layer-6 arrival is itself the least valuable: dropped.
        assert_eq!(l.enqueue(mk(6)), Enqueue::Dropped);
        assert_eq!(l.stats.dropped_packets, 2);
        // Drain and verify the surviving layers.
        let mut layers = Vec::new();
        let (first, mut more) = l.tx_done();
        layers.push(super::layer_of(&first));
        while more.is_some() {
            let (p, next) = l.tx_done();
            layers.push(super::layer_of(&p));
            more = next;
        }
        assert_eq!(layers, vec![0, 3, 0]);
    }

    #[test]
    fn priority_drop_protects_control_packets() {
        let cfg =
            LinkConfig::kbps(32.0).with_queue(1).with_discipline(QueueDiscipline::PriorityDrop);
        let mut l = Link::new(NodeId(0), NodeId(1), &cfg);
        let media = Packet::media(NodeId(0), GroupId(0), SessionId(0), 4, 0, 1000);
        let ctrl = Packet::control(NodeId(0), NodeId(1), 64, std::sync::Arc::new(1u8));
        assert!(matches!(l.enqueue(media.clone()), Enqueue::StartTx(_)));
        assert_eq!(l.enqueue(media), Enqueue::Queued);
        // Control packet (layer 0) evicts the queued layer-4 media packet.
        assert_eq!(l.enqueue(ctrl), Enqueue::Queued);
        assert_eq!(l.stats.dropped_packets, 1);
    }

    #[test]
    fn downed_link_counts_outage_drops_separately() {
        let mut l = link(32.0, 4);
        assert!(matches!(l.enqueue(pkt(1000)), Enqueue::StartTx(_)));
        assert_eq!(l.enqueue(pkt(1000)), Enqueue::Queued);
        // Failure flushes the one queued packet...
        assert_eq!(l.set_down(), 1);
        assert_eq!(l.stats.down_dropped_packets, 1);
        // ...and refusals while down also count as outage loss.
        assert_eq!(l.enqueue(pkt(1000)), Enqueue::Dropped);
        assert_eq!(l.stats.down_dropped_packets, 2);
        assert_eq!(l.stats.dropped_packets, 2, "outage drops are a subset of all drops");
        // A plain congestion drop after repair moves only the total.
        l.set_up();
        assert_eq!(l.enqueue(pkt(1000)), Enqueue::Queued); // transmitter still busy
        let mut l2 = link(32.0, 0);
        assert!(matches!(l2.enqueue(pkt(1000)), Enqueue::StartTx(_)));
        assert_eq!(l2.enqueue(pkt(1000)), Enqueue::Dropped);
        assert_eq!(l2.stats.down_dropped_packets, 0);
        assert_eq!(l2.stats.dropped_packets, 1);
    }

    #[test]
    fn utilization_from_counters() {
        let mut l = link(80.0, 4); // 80 kbit/s
        assert!(matches!(l.enqueue(pkt(1000)), Enqueue::StartTx(_)));
        let _ = l.tx_done();
        // 8000 bits sent; over 1 s at 80_000 bit/s => 10% utilization.
        let u = l.utilization(SimTime::ZERO, SimTime::from_secs(1));
        assert!((u - 0.1).abs() < 1e-9);
    }
}
