//! The simulator: network construction, the event loop, and dispatch.
//!
//! The hot path is allocation-free: packets live in a generational
//! [`PacketSlab`] and events carry `Copy` ids, multicast fan-out duplicates
//! slab references instead of cloning payloads, per-link arrivals are
//! coalesced into one self-rescheduling `LinkDeliver` event per link, and
//! the per-event dispatch state (fan-out link lists, app lists, fault
//! flushes) lives in reusable scratch buffers on the [`Simulator`].

use crate::app::{App, AppId, Ctx};
use crate::event::{Event, EventQueue, QueueBackend, WheelStats};
use crate::faults::{FaultKind, FaultPlan};
use crate::link::{DirLinkId, Enqueue, Link, LinkConfig, QueuedPacket};
use crate::multicast::{GroupId, GroupSnapshot, MulticastConfig, MulticastState, TreeOp};
use crate::node::{Node, NodeId, Routing};
use crate::packet::{Dest, Packet, PacketId, PacketSlab};
use crate::rng::RngStream;
use crate::time::SimTime;
use crate::trace::{DropReason, TraceLog};

/// Global simulation parameters.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Master seed; all component RNG streams derive from it.
    pub seed: u64,
    /// Multicast graft/prune latencies.
    pub multicast: MulticastConfig,
    /// Event-queue implementation. The calendar wheel is the fast default;
    /// the binary heap is kept as a differential oracle — both produce
    /// bit-identical runs.
    pub queue: QueueBackend,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig { seed: 1, multicast: MulticastConfig::default(), queue: QueueBackend::default() }
    }
}

/// The passive network: nodes, links, routing, multicast state.
pub struct Network {
    pub(crate) nodes: Vec<Node>,
    pub(crate) links: Vec<Link>,
    pub(crate) routing: Routing,
    pub(crate) mcast: MulticastState,
    /// Per-node liveness, dense. Checked on every arrival and timer, so it
    /// lives outside the `Node` structs: the whole vector stays cache-hot
    /// where indexing into 100-byte `Node`s would miss per event.
    pub(crate) node_up: Vec<bool>,
}

impl Network {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of **directed** links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Read a directed link (configuration + statistics).
    pub fn link(&self, id: DirLinkId) -> &Link {
        &self.links[id.0 as usize]
    }

    /// The node a directed link points at.
    pub fn link_head(&self, id: DirLinkId) -> NodeId {
        self.links[id.0 as usize].to
    }

    /// The node a directed link leaves from.
    pub fn link_tail(&self, id: DirLinkId) -> NodeId {
        self.links[id.0 as usize].from
    }

    /// A node's label (for diagnostics).
    pub fn node_label(&self, id: NodeId) -> &str {
        &self.nodes[id.index()].label
    }

    /// Whether a node is currently up (not crashed).
    pub fn node_is_up(&self, id: NodeId) -> bool {
        self.node_up[id.index()]
    }

    /// Whether a directed link is currently up.
    pub fn link_is_up(&self, id: DirLinkId) -> bool {
        self.links[id.0 as usize].is_up()
    }

    /// Unicast next hop.
    pub fn next_hop(&self, from: NodeId, to: NodeId) -> Option<DirLinkId> {
        self.routing.next_hop(from, to)
    }

    /// The directed links on the unicast path `from -> to`.
    pub fn path(&self, from: NodeId, to: NodeId) -> Vec<DirLinkId> {
        let links = &self.links;
        self.routing.path(from, to, |l| links[l.0 as usize].to)
    }

    /// Ground-truth snapshot of every multicast distribution tree.
    pub fn multicast_snapshot(&self) -> Vec<GroupSnapshot> {
        self.mcast.snapshot()
    }

    /// The multicast root of `group`.
    pub fn group_root(&self, group: GroupId) -> NodeId {
        self.mcast.root(group)
    }

    pub(crate) fn join_group(&mut self, group: GroupId, node: NodeId, app: AppId) -> Vec<TreeOp> {
        let links = &self.links;
        self.mcast.join(group, node, app, &self.routing, |l| links[l.0 as usize].to)
    }

    pub(crate) fn leave_group(&mut self, group: GroupId, node: NodeId, app: AppId) -> Vec<TreeOp> {
        let links = &self.links;
        self.mcast.leave(group, node, app, &self.routing, |l| links[l.0 as usize].to)
    }

    pub(crate) fn join_group_batch(
        &mut self,
        group: GroupId,
        members: &[(NodeId, AppId)],
    ) -> Vec<TreeOp> {
        let links = &self.links;
        self.mcast.join_batch(group, members, &self.routing, |l| links[l.0 as usize].to)
    }

    /// Cross-check the multicast SoA views (bitmaps vs sorted vectors vs
    /// desire refcounts) — post-run harness assertion, not a hot path.
    pub fn multicast_audit(&self) -> Result<(), String> {
        let links = &self.links;
        self.mcast.audit(&self.routing, |l| links[l.0 as usize].to)
    }
}

/// Builds the static topology, then freezes it into a [`Simulator`].
pub struct NetworkBuilder {
    nodes: Vec<Node>,
    links: Vec<Link>,
    cfg: SimConfig,
}

impl NetworkBuilder {
    pub fn new(cfg: SimConfig) -> Self {
        NetworkBuilder { nodes: Vec::new(), links: Vec::new(), cfg }
    }

    /// Add a node with a diagnostic label.
    pub fn add_node(&mut self, label: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { label: label.into(), ..Node::default() });
        id
    }

    /// Add a duplex link; returns the two directed halves `(a->b, b->a)`.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, cfg: LinkConfig) -> (DirLinkId, DirLinkId) {
        assert_ne!(a, b, "self-links are not supported");
        let ab = DirLinkId(self.links.len() as u32);
        self.links.push(Link::new(a, b, &cfg));
        let ba = DirLinkId(self.links.len() as u32);
        self.links.push(Link::new(b, a, &cfg));
        self.nodes[a.index()].out_links.push(ab);
        self.nodes[b.index()].out_links.push(ba);
        (ab, ba)
    }

    /// Freeze the topology: compute routing and produce the simulator.
    pub fn build(self) -> Simulator {
        let triples: Vec<(DirLinkId, NodeId, NodeId)> = self
            .links
            .iter()
            .enumerate()
            .map(|(i, l)| (DirLinkId(i as u32), l.from, l.to))
            .collect();
        let routing = Routing::build(self.nodes.len(), &triples);
        let num_nodes = self.nodes.len();
        let num_links = self.links.len();
        let net = Network {
            nodes: self.nodes,
            links: self.links,
            routing,
            mcast: MulticastState::new(self.cfg.multicast, num_nodes, num_links),
            node_up: vec![true; num_nodes],
        };
        Simulator {
            clock: SimTime::ZERO,
            queue: EventQueue::with_backend(self.cfg.queue),
            net,
            slab: PacketSlab::new(),
            apps: Vec::new(),
            app_node: Vec::new(),
            started: false,
            cfg: self.cfg,
            events_done: 0,
            corruption_rng: RngStream::derive(self.cfg.seed, "netsim/corruption"),
            ev_counts: [0; 7],
            drop_counts: [0; 3],
            trace: TraceLog::disabled(),
            scratch_links: Vec::new(),
            scratch_apps: Vec::new(),
            scratch_flush: Vec::new(),
        }
    }
}

/// A profiler snapshot: where events went, where memory and queues peaked.
///
/// Every field is a pure observer — collecting them never changes a run.
/// Drop counts split loss by [`DropReason`], so congestion loss (the control
/// loop's signal) is distinguishable from fault loss (the chaos plan's).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimProfile {
    /// Total events processed.
    pub events_total: u64,
    /// Events processed, by type.
    pub ev_link_tx_done: u64,
    pub ev_link_deliver: u64,
    pub ev_inject: u64,
    pub ev_timer: u64,
    pub ev_graft_done: u64,
    pub ev_prune_done: u64,
    pub ev_fault: u64,
    /// Packets dropped, by reason (includes priority-drop evictions under
    /// `queue_full`).
    pub drops_queue_full: u64,
    pub drops_link_down: u64,
    pub drops_node_down: u64,
    /// Peak concurrent packets alive in the slab (slots ever allocated).
    pub slab_hwm: u64,
    /// Packets alive right now (nonzero after drain indicates a leak).
    pub slab_live: u64,
    /// Peak number of pending events in the queue.
    pub pending_events_hwm: u64,
    /// Peak per-link queue occupancy, max over all directed links.
    pub max_link_queue_hwm: u64,
    /// Calendar-wheel internals (zeros on the heap oracle backend).
    pub wheel: WheelStats,
    /// Shards in the run (1 for a plain sequential simulator, even though
    /// it never crosses a barrier — keeps ratios like events/shard honest).
    pub shards: u64,
    /// Packets handed across shard boundaries through mailboxes.
    pub shard_handoffs: u64,
    /// Barrier epochs executed by the sharded runner.
    pub shard_barrier_epochs: u64,
    /// Epochs in which at least one shard processed zero events — the
    /// conservative lookahead starving a wheel, visible in trails before it
    /// shows up as wall-clock.
    pub shard_lookahead_stalls: u64,
    /// Smallest per-shard event count (load-balance floor).
    pub shard_events_min: u64,
    /// Largest per-shard event count (load-balance ceiling).
    pub shard_events_max: u64,
}

impl SimProfile {
    /// Flat `("name", value)` pairs for folding into a counter registry.
    pub fn counter_entries(&self) -> [(&'static str, u64); 23] {
        [
            ("ev_link_tx_done", self.ev_link_tx_done),
            ("ev_link_deliver", self.ev_link_deliver),
            ("ev_inject", self.ev_inject),
            ("ev_timer", self.ev_timer),
            ("ev_graft_done", self.ev_graft_done),
            ("ev_prune_done", self.ev_prune_done),
            ("ev_fault", self.ev_fault),
            ("drops_queue_full", self.drops_queue_full),
            ("drops_link_down", self.drops_link_down),
            ("drops_node_down", self.drops_node_down),
            ("slab_hwm", self.slab_hwm),
            ("pending_events_hwm", self.pending_events_hwm),
            ("max_link_queue_hwm", self.max_link_queue_hwm),
            ("wheel_cascades", self.wheel.cascades),
            ("wheel_cascaded_entries", self.wheel.cascaded_entries),
            ("wheel_lazy_sorts", self.wheel.lazy_sorts),
            ("wheel_overflow_filed", self.wheel.overflow_filed),
            ("shard.count", self.shards),
            ("shard.handoffs", self.shard_handoffs),
            ("shard.barrier_epochs", self.shard_barrier_epochs),
            ("shard.lookahead_stalls", self.shard_lookahead_stalls),
            ("shard.events_min", self.shard_events_min),
            ("shard.events_max", self.shard_events_max),
        ]
    }

    /// Fold another shard's profile into this one: counters add, peaks max.
    /// The sharded runner merges per-shard snapshots through this and then
    /// overwrites the `shard_*` fields with its own barrier bookkeeping.
    pub fn merge(&mut self, other: &SimProfile) {
        self.events_total += other.events_total;
        self.ev_link_tx_done += other.ev_link_tx_done;
        self.ev_link_deliver += other.ev_link_deliver;
        self.ev_inject += other.ev_inject;
        self.ev_timer += other.ev_timer;
        self.ev_graft_done += other.ev_graft_done;
        self.ev_prune_done += other.ev_prune_done;
        self.ev_fault += other.ev_fault;
        self.drops_queue_full += other.drops_queue_full;
        self.drops_link_down += other.drops_link_down;
        self.drops_node_down += other.drops_node_down;
        self.slab_hwm += other.slab_hwm;
        self.slab_live += other.slab_live;
        self.pending_events_hwm = self.pending_events_hwm.max(other.pending_events_hwm);
        self.max_link_queue_hwm = self.max_link_queue_hwm.max(other.max_link_queue_hwm);
        self.wheel.cascades += other.wheel.cascades;
        self.wheel.cascaded_entries += other.wheel.cascaded_entries;
        self.wheel.lazy_sorts += other.wheel.lazy_sorts;
        self.wheel.overflow_filed += other.wheel.overflow_filed;
        self.shards += other.shards;
        self.shard_events_min = self.shard_events_min.min(other.events_total);
        self.shard_events_max = self.shard_events_max.max(other.events_total);
    }
}

/// The discrete-event simulator.
pub struct Simulator {
    clock: SimTime,
    queue: EventQueue,
    net: Network,
    /// Storage for every packet currently alive in the network; events and
    /// link queues refer to it by [`PacketId`].
    slab: PacketSlab,
    apps: Vec<Option<Box<dyn App>>>,
    app_node: Vec<NodeId>,
    started: bool,
    cfg: SimConfig,
    events_done: u64,
    /// Randomness for the per-link corruption (random-loss) model.
    corruption_rng: RngStream,
    /// Events processed, indexed by event type (see `event_type_index`).
    ev_counts: [u64; 7],
    /// Packets dropped, indexed by `DropReason as usize`.
    drop_counts: [u64; 3],
    /// Optional structured trace (drops, subscription changes, …).
    pub trace: TraceLog,
    /// Reusable fan-out buffer (active out-links of the current hop).
    scratch_links: Vec<DirLinkId>,
    /// Reusable delivery buffer (apps receiving the current packet).
    scratch_apps: Vec<AppId>,
    /// Reusable outage-flush buffer (packets flushed by a fault).
    scratch_flush: Vec<QueuedPacket>,
}

impl Simulator {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// The master seed for this run.
    pub fn seed(&self) -> u64 {
        self.cfg.seed
    }

    /// The network (topology, link stats, multicast ground truth).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Create a multicast group rooted at `root`.
    pub fn create_group(&mut self, root: NodeId) -> GroupId {
        self.net.mcast.create_group(root)
    }

    /// Attach an application to `node`. Must be called before the first run.
    pub fn add_app(&mut self, node: NodeId, app: Box<dyn App>) -> AppId {
        assert!(!self.started, "apps must be added before the simulation starts");
        let id = AppId(self.apps.len() as u32);
        self.apps.push(Some(app));
        self.app_node.push(node);
        self.net.nodes[node.index()].apps.push(id);
        id
    }

    /// Borrow an app back (e.g. to read collected statistics after a run).
    ///
    /// Panics if the id is out of range.
    pub fn app(&self, id: AppId) -> &dyn App {
        self.apps[id.index()].as_deref().expect("app is being dispatched")
    }

    /// Mutably borrow an app (e.g. to reconfigure between phases).
    pub fn app_mut(&mut self, id: AppId) -> &mut dyn App {
        self.apps[id.index()].as_deref_mut().expect("app is being dispatched")
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_done
    }

    /// Packets currently alive in the network (queued, in flight, or being
    /// delivered). A fully drained simulation holds zero — a nonzero value
    /// after the event queue empties indicates a reference leak.
    pub fn packets_live(&self) -> usize {
        self.slab.live()
    }

    /// Schedule every fault of `plan` onto the event queue. An empty plan
    /// schedules nothing, so installing it leaves the run bit-identical.
    /// May be called before or during a run; faults in the past of the
    /// clock would violate event-time monotonicity and are rejected.
    pub fn install_faults(&mut self, plan: &FaultPlan) {
        for &(t, kind) in plan.events() {
            assert!(t >= self.clock, "fault at {t:?} is in the past");
            self.queue.schedule(t, Event::Fault(kind));
        }
    }

    /// Inject `packet` at `node` at absolute time `at` — the sharded
    /// runner's mailbox drain lands cross-shard packets here. `at` must not
    /// be in this shard's past; conservative lookahead guarantees that as
    /// long as the handoff delay is at least one epoch long.
    pub fn schedule_arrival(&mut self, at: SimTime, node: NodeId, packet: Packet) {
        assert!(at >= self.clock, "cross-shard arrival at {at:?} is in the past");
        let id = self.slab.insert(packet);
        self.queue.schedule(at, Event::Inject { node, packet: id });
    }

    /// Subscribe a flash crowd of `(node, app)` pairs to `group` in one
    /// batched pass (see [`crate::multicast::MulticastState::join_batch`]):
    /// membership and desire are applied for the whole crowd, then each
    /// needed graft is scheduled exactly once, in link-id order.
    pub fn batch_join(&mut self, group: GroupId, members: &[(NodeId, AppId)]) {
        for op in self.net.join_group_batch(group, members) {
            match op {
                TreeOp::Graft { group, link, after } => {
                    self.queue.schedule(self.clock + after, Event::GraftDone { group, link });
                }
                TreeOp::Prune { group, link, after } => {
                    self.queue.schedule(self.clock + after, Event::PruneDone { group, link });
                }
            }
        }
    }

    fn start(&mut self) {
        self.started = true;
        // Pre-size the hot-path stores from the topology: at steady state
        // the queue holds at most one LinkTxDone + one LinkDeliver per link
        // plus one timer per app, and the slab grows with in-network
        // packets, which the same bound caps.
        let cap = self.net.links.len() + self.apps.len();
        self.queue.reserve(cap);
        self.slab.reserve(cap);
        for i in 0..self.apps.len() {
            self.dispatch_app(AppId(i as u32), |app, ctx| app.on_start(ctx));
        }
    }

    /// Run until the event queue is exhausted or `deadline` is passed.
    /// The clock lands exactly on `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        if !self.started {
            self.start();
        }
        while let Some((time, event)) = self.queue.pop_due(deadline) {
            debug_assert!(time >= self.clock, "time moved backwards");
            self.clock = time;
            self.handle(event);
            self.events_done += 1;
        }
        if self.clock < deadline {
            self.clock = deadline;
        }
    }

    /// Process exactly one event, if any is pending. Returns its time.
    pub fn step(&mut self) -> Option<SimTime> {
        if !self.started {
            self.start();
        }
        let (time, event) = self.queue.pop()?;
        self.clock = time;
        self.handle(event);
        self.events_done += 1;
        Some(time)
    }

    /// Stable index of an event's type (profiler bucketing).
    fn event_type_index(event: &Event) -> usize {
        match event {
            Event::LinkTxDone(_) => 0,
            Event::LinkDeliver(_) => 1,
            Event::Inject { .. } => 2,
            Event::Timer { .. } => 3,
            Event::GraftDone { .. } => 4,
            Event::PruneDone { .. } => 5,
            Event::Fault(_) => 6,
        }
    }

    /// Snapshot the profiler counters. Cheap; callable at any point.
    pub fn profile(&self) -> SimProfile {
        let wheel = self.queue.wheel_stats();
        let max_link_queue_hwm =
            self.net.links.iter().map(|l| l.stats.queue_hwm).max().unwrap_or(0);
        SimProfile {
            events_total: self.events_done,
            ev_link_tx_done: self.ev_counts[0],
            ev_link_deliver: self.ev_counts[1],
            ev_inject: self.ev_counts[2],
            ev_timer: self.ev_counts[3],
            ev_graft_done: self.ev_counts[4],
            ev_prune_done: self.ev_counts[5],
            ev_fault: self.ev_counts[6],
            drops_queue_full: self.drop_counts[DropReason::QueueFull as usize],
            drops_link_down: self.drop_counts[DropReason::LinkDown as usize],
            drops_node_down: self.drop_counts[DropReason::NodeDown as usize],
            slab_hwm: self.slab.capacity() as u64,
            slab_live: self.slab.live() as u64,
            pending_events_hwm: self.queue.pending_hwm() as u64,
            max_link_queue_hwm,
            wheel,
            shards: 1,
            shard_handoffs: 0,
            shard_barrier_epochs: 0,
            shard_lookahead_stalls: 0,
            shard_events_min: self.events_done,
            shard_events_max: self.events_done,
        }
    }

    fn count_drop(&mut self, l: DirLinkId, bytes: u32, reason: DropReason) {
        self.drop_counts[reason as usize] += 1;
        self.trace.drop(self.clock, l, bytes, reason);
    }

    fn handle(&mut self, event: Event) {
        self.ev_counts[Self::event_type_index(&event)] += 1;
        match event {
            Event::LinkTxDone(l) => self.link_tx_done(l),
            Event::LinkDeliver(l) => self.link_deliver(l),
            Event::Inject { node, packet } => self.arrive(node, None, packet),
            Event::Timer { app, token } => {
                // Timers of apps on a crashed node are swallowed; the apps
                // re-arm what they need in `on_restart`.
                if self.net.node_up[self.app_node[app.index()].index()] {
                    self.dispatch_app(app, |a, ctx| a.on_timer(ctx, token));
                }
            }
            Event::GraftDone { group, link } => {
                let (from, to) = {
                    let l = &self.net.links[link.0 as usize];
                    (l.from, l.to)
                };
                // A graft cannot take effect across a failed link or a dead
                // endpoint; clearing the pending marker lets a later join
                // retry it once the fault heals.
                let viable = self.net.links[link.0 as usize].is_up()
                    && self.net.node_up[from.index()]
                    && self.net.node_up[to.index()];
                if !viable {
                    self.net.mcast.graft_failed(group, link);
                    return;
                }
                self.net.mcast.graft_done(group, link, from);
            }
            Event::PruneDone { group, link } => {
                let from = self.net.links[link.0 as usize].from;
                self.net.mcast.prune_done(group, link, from);
            }
            Event::Fault(kind) => self.apply_fault(kind),
        }
    }

    /// Drop every packet flushed into `scratch_flush` by an outage: trace
    /// the loss and release the slab references. Restores the scratch
    /// buffer afterwards.
    fn account_outage_flush(
        &mut self,
        l: DirLinkId,
        mut flushed: Vec<QueuedPacket>,
        reason: DropReason,
    ) {
        for qp in flushed.drain(..) {
            self.count_drop(l, qp.size, reason);
            self.slab.release(qp.id);
        }
        self.scratch_flush = flushed;
    }

    fn apply_fault(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::LinkDown(l) => {
                if self.net.links[l.0 as usize].is_up() {
                    let mut flushed = std::mem::take(&mut self.scratch_flush);
                    flushed.clear();
                    self.net.links[l.0 as usize].set_down(&mut flushed);
                    self.account_outage_flush(l, flushed, DropReason::LinkDown);
                    self.trace.link_state(self.clock, l, false);
                }
            }
            FaultKind::LinkUp(l) => {
                let link = &mut self.net.links[l.0 as usize];
                if !link.is_up() {
                    link.set_up();
                    self.trace.link_state(self.clock, l, true);
                }
            }
            FaultKind::NodeCrash(n) => {
                if !self.net.node_up[n.index()] {
                    return;
                }
                self.net.node_up[n.index()] = false;
                // The router's buffers vanish with it — same outage
                // accounting as a link failure (`Link::flush_outage`).
                let mut outs = std::mem::take(&mut self.scratch_links);
                outs.clear();
                outs.extend_from_slice(&self.net.nodes[n.index()].out_links);
                for &l in &outs {
                    let mut flushed = std::mem::take(&mut self.scratch_flush);
                    flushed.clear();
                    self.net.links[l.0 as usize].flush_outage(&mut flushed);
                    self.account_outage_flush(l, flushed, DropReason::NodeDown);
                }
                outs.clear();
                self.scratch_links = outs;
                // ... as does its multicast forwarding state (including its
                // contribution to every group's desired-link refcounts).
                let links = &self.net.links;
                self.net.mcast.node_crashed(n, &self.net.routing, |l| links[l.0 as usize].to);
                self.trace.node_state(self.clock, n, false);
            }
            FaultKind::NodeRestart(n) => {
                if self.net.node_up[n.index()] {
                    return;
                }
                self.net.node_up[n.index()] = true;
                self.trace.node_state(self.clock, n, true);
                let mut apps = std::mem::take(&mut self.scratch_apps);
                apps.clear();
                apps.extend_from_slice(&self.net.nodes[n.index()].apps);
                for &app in &apps {
                    self.dispatch_app(app, |a, ctx| a.on_restart(ctx));
                }
                apps.clear();
                self.scratch_apps = apps;
            }
        }
    }

    fn link_tx_done(&mut self, l: DirLinkId) {
        let tail_up = {
            let from = self.net.links[l.0 as usize].from;
            self.net.node_up[from.index()]
        };
        // The link failed — or its transmitting router died — while the
        // packet was being serialized: it dies on the wire. (If the fault
        // healed faster than the serialization time, the packet survives:
        // a store-and-forward hop never noticed the micro-flap.)
        if !self.net.links[l.0 as usize].is_up() || !tail_up {
            // The reason is the link itself when it is down; otherwise the
            // transmitting node crashed out from under a healthy wire.
            let reason = if !self.net.links[l.0 as usize].is_up() {
                DropReason::LinkDown
            } else {
                DropReason::NodeDown
            };
            let mut flushed = std::mem::take(&mut self.scratch_flush);
            flushed.clear();
            let aborted = {
                let link = &mut self.net.links[l.0 as usize];
                let aborted = link.abort_tx();
                link.flush_outage(&mut flushed);
                aborted
            };
            if let Some(qp) = aborted {
                self.count_drop(l, qp.size, reason);
                self.slab.release(qp.id);
            }
            self.account_outage_flush(l, flushed, reason);
            return;
        }
        let (sent, next, arrive_at, corrupted) = {
            let link = &mut self.net.links[l.0 as usize];
            let (sent, next) = link.tx_done();
            let arrive_at = self.clock + link.delay;
            let corrupted = link.random_loss > 0.0 && self.corruption_rng.chance(link.random_loss);
            if corrupted {
                link.stats.corrupted_packets += 1;
            }
            (sent, next, arrive_at, corrupted)
        };
        if let Some(ser) = next {
            self.queue.schedule(self.clock + ser, Event::LinkTxDone(l));
        }
        if corrupted {
            self.slab.release(sent.id);
        } else if self.net.links[l.0 as usize].wire_push(arrive_at, sent.id) {
            // The wire was idle: this packet needs a delivery event. (A
            // non-empty wire already has one pending, which re-arms itself
            // until the wire drains — one event queue entry per busy link.)
            self.queue.schedule(arrive_at, Event::LinkDeliver(l));
        }
    }

    fn link_deliver(&mut self, l: DirLinkId) {
        while let Some(pid) = self.net.links[l.0 as usize].wire_pop_due(self.clock) {
            let head = self.net.links[l.0 as usize].to;
            self.arrive(head, Some(l), pid);
        }
        if let Some(t) = self.net.links[l.0 as usize].wire_next() {
            self.queue.schedule(t, Event::LinkDeliver(l));
        }
    }

    /// Offer `pid` to link `l`. The caller passes the packet's `size` and
    /// `layer` so a multicast fan-out resolves the slab entry once per
    /// arrival, not once per replica.
    fn forward(&mut self, l: DirLinkId, pid: PacketId, size: u32, layer: u8) {
        match self.net.links[l.0 as usize].enqueue(QueuedPacket { id: pid, size, layer }) {
            Enqueue::StartTx(ser) => {
                self.queue.schedule(self.clock + ser, Event::LinkTxDone(l));
            }
            Enqueue::Queued { evicted: None } => {}
            Enqueue::Queued { evicted: Some(victim) } => {
                // Priority-drop eviction: congestion loss like drop-tail.
                self.count_drop(l, victim.size, DropReason::QueueFull);
                self.slab.release(victim.id);
            }
            Enqueue::Dropped => {
                // A down link refuses everything; a full queue on a live
                // link is congestion.
                let reason = if self.net.links[l.0 as usize].is_up() {
                    DropReason::QueueFull
                } else {
                    DropReason::LinkDown
                };
                self.count_drop(l, size, reason);
                self.slab.release(pid);
            }
        }
    }

    fn arrive(&mut self, node: NodeId, from_link: Option<DirLinkId>, pid: PacketId) {
        // A crashed router forwards nothing and delivers nothing; packets
        // already in flight toward it are lost on arrival. The loss is
        // charged to the link that carried the packet in — each shard owns
        // its links' stats, so a handoff lost at a dead border node shows up
        // on the destination shard's ledger, not in a global untraceable
        // bucket (injections have no carrying link and stay unattributed).
        if !self.net.node_up[node.index()] {
            if let Some(l) = from_link {
                let size = self.slab.get(pid).size;
                self.net.links[l.0 as usize].stats.count_dead_arrival(size);
                self.count_drop(l, size, DropReason::NodeDown);
            }
            self.slab.release(pid);
            return;
        }
        // One slab resolution per arrival; `forward` reuses size/layer.
        let (dest, size, layer) = {
            let p = self.slab.get(pid);
            (p.dest, p.size, p.layer())
        };
        match dest {
            Dest::Node(d) if d == node => {
                // Deliver to every app on the node; apps ignore messages that
                // are not for them.
                let mut apps = std::mem::take(&mut self.scratch_apps);
                apps.clear();
                apps.extend_from_slice(&self.net.nodes[node.index()].apps);
                self.deliver(pid, &apps);
                apps.clear();
                self.scratch_apps = apps;
            }
            Dest::Node(d) => {
                if let Some(l) = self.net.routing.next_hop(node, d) {
                    self.forward(l, pid, size, layer);
                } else {
                    // Unroutable unicast is silently discarded, as a real
                    // network would.
                    self.slab.release(pid);
                }
            }
            Dest::Group(g) => {
                // Forward along the active distribution tree, never back the
                // way the packet came. Fan-out duplicates the slab reference,
                // not the packet.
                let came_from = from_link.map(|l| self.net.links[l.0 as usize].from);
                let mut outs = std::mem::take(&mut self.scratch_links);
                outs.clear();
                {
                    let links = &self.net.links;
                    outs.extend(
                        self.net
                            .mcast
                            .active_out(g, node)
                            .iter()
                            .copied()
                            .filter(|&l| Some(links[l.0 as usize].to) != came_from),
                    );
                }
                for &l in &outs {
                    self.slab.dup(pid);
                    self.forward(l, pid, size, layer);
                }
                outs.clear();
                self.scratch_links = outs;
                // Local delivery to subscribed apps (but not to the app that
                // injected it, which cannot happen: sources do not subscribe
                // to their own groups in any scenario; receivers never send
                // media). The subscriber list is kept sorted by the
                // multicast state; the common non-member router exits on a
                // bitmap probe without loading the list.
                if self.net.mcast.subscribers_at(g, node).is_empty() {
                    self.slab.release(pid);
                } else {
                    let mut apps = std::mem::take(&mut self.scratch_apps);
                    apps.clear();
                    apps.extend_from_slice(self.net.mcast.subscribers_at(g, node));
                    self.deliver(pid, &apps);
                    apps.clear();
                    self.scratch_apps = apps;
                }
            }
        }
    }

    /// Hand the packet to each app in `apps`, consuming the caller's slab
    /// reference. The packet is moved out of the slab for the duration of
    /// the dispatch (apps may originate new packets, which allocate fresh
    /// slots) and returned afterwards unless this was the last reference.
    fn deliver(&mut self, pid: PacketId, apps: &[AppId]) {
        let pkt = self.slab.take_for_delivery(pid);
        for &app in apps {
            self.dispatch_app(app, |a, ctx| a.on_packet(ctx, &pkt));
        }
        self.slab.finish_delivery(pid, pkt);
    }

    fn dispatch_app(&mut self, id: AppId, f: impl FnOnce(&mut dyn App, &mut Ctx<'_>)) {
        let mut app = self.apps[id.index()].take().expect("re-entrant app dispatch");
        let mut ctx = Ctx {
            now: self.clock,
            app: id,
            node: self.app_node[id.index()],
            queue: &mut self.queue,
            net: &mut self.net,
            slab: &mut self.slab,
        };
        f(app.as_mut(), &mut ctx);
        self.apps[id.index()] = Some(app);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{ControlBody, Packet, SessionId};
    use crate::time::SimDuration;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// Two nodes, one duplex 32 kb/s link.
    fn two_node_sim() -> (Simulator, NodeId, NodeId) {
        let mut b = NetworkBuilder::new(SimConfig::default());
        let a = b.add_node("a");
        let c = b.add_node("c");
        b.add_link(a, c, LinkConfig::kbps(32.0));
        (b.build(), a, c)
    }

    /// App that records arrival times of control packets carrying `u32`.
    struct Recorder {
        got: Arc<AtomicU64>,
        last_time_ns: Arc<AtomicU64>,
    }
    impl App for Recorder {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, p: &Packet) {
            if p.control_as::<u32>().is_some() {
                self.got.fetch_add(1, Ordering::Relaxed);
                self.last_time_ns.store(ctx.now().nanos(), Ordering::Relaxed);
            }
        }
    }

    /// App that sends one control packet at start.
    struct OneShot {
        dest: NodeId,
    }
    impl App for OneShot {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let body: ControlBody = Arc::new(7u32);
            ctx.send_control(self.dest, 1000, body);
        }
    }

    #[test]
    fn unicast_end_to_end_timing() {
        let (mut sim, a, c) = two_node_sim();
        let got = Arc::new(AtomicU64::new(0));
        let t = Arc::new(AtomicU64::new(0));
        sim.add_app(a, Box::new(OneShot { dest: c }));
        sim.add_app(c, Box::new(Recorder { got: Arc::clone(&got), last_time_ns: Arc::clone(&t) }));
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(got.load(Ordering::Relaxed), 1);
        // 1000 B at 32 kb/s = 250 ms serialization + 200 ms propagation.
        assert_eq!(t.load(Ordering::Relaxed), SimTime::from_millis(450).nanos());
        assert_eq!(sim.packets_live(), 0, "drained run must not leak packets");
    }

    /// Source that sends `n` media packets back-to-back at start.
    struct Burst {
        group: GroupId,
        n: u64,
    }
    impl App for Burst {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for seq in 0..self.n {
                ctx.send_media(self.group, SessionId(0), 0, seq, 1000);
            }
        }
    }

    /// Receiver counting media packets.
    struct Counter {
        group: GroupId,
        got: Arc<AtomicU64>,
    }
    impl App for Counter {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.join(self.group);
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, p: &Packet) {
            if p.media_fields().is_some() {
                self.got.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    #[test]
    fn multicast_delivery_after_graft() {
        let (mut sim, a, c) = two_node_sim();
        let g = sim.create_group(a);
        let got = Arc::new(AtomicU64::new(0));
        sim.add_app(c, Box::new(Counter { group: g, got: Arc::clone(&got) }));
        sim.add_app(a, Box::new(Burst { group: g, n: 3 }));
        // Burst fires at t=0, before the graft (50 ms) completes: all three
        // packets die at the unjoined tree. Wait, then send again.
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(got.load(Ordering::Relaxed), 0);

        // The graft has long completed; a new burst flows through.
        struct LateBurst {
            group: GroupId,
        }
        impl App for LateBurst {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_secs(2), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
                for seq in 0..3 {
                    ctx.send_media(self.group, SessionId(0), 0, seq, 1000);
                }
            }
        }
        // Rebuild with a late burst instead.
        let (mut sim, a, c) = two_node_sim();
        let g = sim.create_group(a);
        let got = Arc::new(AtomicU64::new(0));
        sim.add_app(c, Box::new(Counter { group: g, got: Arc::clone(&got) }));
        sim.add_app(a, Box::new(LateBurst { group: g }));
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(got.load(Ordering::Relaxed), 3);
        assert_eq!(sim.packets_live(), 0);
    }

    #[test]
    fn drop_tail_loss_under_overload() {
        // 32 kb/s link, queue of 2: a 10-packet burst loses packets.
        let mut b = NetworkBuilder::new(SimConfig::default());
        let a = b.add_node("a");
        let c = b.add_node("c");
        let (ab, _) = b.add_link(a, c, LinkConfig::kbps(32.0).with_queue(2));
        let mut sim = b.build();
        let g = sim.create_group(a);
        let got = Arc::new(AtomicU64::new(0));
        sim.add_app(c, Box::new(Counter { group: g, got: Arc::clone(&got) }));

        struct LateBigBurst {
            group: GroupId,
        }
        impl App for LateBigBurst {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_secs(1), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
                for seq in 0..10 {
                    ctx.send_media(self.group, SessionId(0), 0, seq, 1000);
                }
            }
        }
        sim.add_app(a, Box::new(LateBigBurst { group: g }));
        sim.run_until(SimTime::from_secs(30));
        // 1 in flight + 2 queued survive; 7 dropped.
        assert_eq!(got.load(Ordering::Relaxed), 3);
        assert_eq!(sim.network().link(ab).stats.dropped_packets, 7);
        assert_eq!(sim.packets_live(), 0, "dropped packets must be released");
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerApp {
            record: Arc<parking_lot_free::Cell>,
        }
        // A tiny shared Vec<u64> without extra deps.
        mod parking_lot_free {
            use std::sync::Mutex;
            #[derive(Default)]
            pub struct Cell(pub Mutex<Vec<u64>>);
        }
        impl App for TimerApp {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_secs(3), 3);
                ctx.set_timer(SimDuration::from_secs(1), 1);
                ctx.set_timer(SimDuration::from_secs(2), 2);
            }
            fn on_timer(&mut self, _ctx: &mut Ctx<'_>, token: u64) {
                self.record.0.lock().unwrap().push(token);
            }
        }
        let (mut sim, a, _) = two_node_sim();
        let rec = Arc::new(parking_lot_free::Cell::default());
        sim.add_app(a, Box::new(TimerApp { record: Arc::clone(&rec) }));
        sim.run_until(SimTime::from_secs(10));
        assert_eq!(*rec.0.lock().unwrap(), vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_secs(10));
    }

    /// Source that sends `n` media packets back-to-back at a fixed time.
    struct TimedBurst {
        group: GroupId,
        at: SimDuration,
        n: u64,
    }
    impl App for TimedBurst {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(self.at, 0);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            for seq in 0..self.n {
                ctx.send_media(self.group, SessionId(0), 0, seq, 1000);
            }
        }
    }

    #[test]
    fn link_down_aborts_in_flight_and_flushes_queue() {
        let mut b = NetworkBuilder::new(SimConfig::default());
        let a = b.add_node("a");
        let c = b.add_node("c");
        let (ab, _) = b.add_link(a, c, LinkConfig::kbps(32.0));
        let mut sim = b.build();
        let g = sim.create_group(a);
        let got = Arc::new(AtomicU64::new(0));
        sim.add_app(c, Box::new(Counter { group: g, got: Arc::clone(&got) }));
        sim.add_app(a, Box::new(TimedBurst { group: g, at: SimDuration::from_secs(1), n: 3 }));
        // 1000 B at 32 kb/s = 250 ms serialization: tx-dones at 1.25/1.50/1.75.
        let plan = FaultPlan::new()
            .at(SimTime::from_millis(1300), FaultKind::LinkDown(ab))
            .at(SimTime::from_secs(3), FaultKind::LinkUp(ab));
        sim.install_faults(&plan);
        sim.run_until(SimTime::from_secs(5));
        // #1 completed before the fault; #3 was flushed from the queue when
        // the link went down; #2 was on the wire and died at its tx-done.
        assert_eq!(got.load(Ordering::Relaxed), 1);
        assert_eq!(sim.network().link(ab).stats.dropped_packets, 2);
        assert!(sim.network().link_is_up(ab));
        assert_eq!(sim.packets_live(), 0, "aborted and flushed packets must be released");
    }

    #[test]
    fn micro_flap_shorter_than_serialization_is_survived() {
        let mut b = NetworkBuilder::new(SimConfig::default());
        let a = b.add_node("a");
        let c = b.add_node("c");
        let (ab, _) = b.add_link(a, c, LinkConfig::kbps(32.0));
        let mut sim = b.build();
        let g = sim.create_group(a);
        let got = Arc::new(AtomicU64::new(0));
        sim.add_app(c, Box::new(Counter { group: g, got: Arc::clone(&got) }));
        sim.add_app(a, Box::new(TimedBurst { group: g, at: SimDuration::from_secs(1), n: 1 }));
        // Down at 1.05 s, healed at 1.20 s — before the 1.25 s tx-done, so
        // the store-and-forward hop never notices.
        let plan = FaultPlan::new()
            .at(SimTime::from_millis(1050), FaultKind::LinkDown(ab))
            .at(SimTime::from_millis(1200), FaultKind::LinkUp(ab));
        sim.install_faults(&plan);
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(got.load(Ordering::Relaxed), 1);
        assert_eq!(sim.network().link(ab).stats.dropped_packets, 0);
    }

    #[test]
    fn node_crash_blackholes_until_restart_and_rejoin() {
        let mut b = NetworkBuilder::new(SimConfig::default());
        let a = b.add_node("src");
        let m = b.add_node("mid");
        let c = b.add_node("rcv");
        b.add_link(a, m, LinkConfig::kbps(1000.0));
        b.add_link(m, c, LinkConfig::kbps(1000.0));
        let mut sim = b.build();
        let g = sim.create_group(a);

        /// Sends one packet every 200 ms, forever.
        struct Metronome {
            group: GroupId,
            seq: u64,
        }
        impl App for Metronome {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_millis(200), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
                ctx.send_media(self.group, SessionId(0), 0, self.seq, 500);
                self.seq += 1;
                ctx.set_timer(SimDuration::from_millis(200), 0);
            }
        }
        /// Joins at start and re-joins every second (idempotent repair).
        struct Rejoiner {
            group: GroupId,
            got: Arc<AtomicU64>,
        }
        impl App for Rejoiner {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.join(self.group);
                ctx.set_timer(SimDuration::from_secs(1), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
                ctx.join(self.group);
                ctx.set_timer(SimDuration::from_secs(1), 0);
            }
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, p: &Packet) {
                if p.media_fields().is_some() {
                    self.got.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let got = Arc::new(AtomicU64::new(0));
        sim.add_app(c, Box::new(Rejoiner { group: g, got: Arc::clone(&got) }));
        sim.add_app(a, Box::new(Metronome { group: g, seq: 0 }));
        let plan =
            FaultPlan::new().node_outage(m, SimTime::from_millis(2500), SimTime::from_millis(4500));
        sim.install_faults(&plan);

        sim.run_until(SimTime::from_secs(3));
        let before = got.load(Ordering::Relaxed);
        assert!(before > 0, "traffic must flow before the crash");
        // Everything sent after the crash dies at the dead router — and even
        // after the 4.5 s restart the regrown router has no forwarding
        // state, so traffic keeps blackholing...
        sim.run_until(SimTime::from_millis(5000));
        assert_eq!(got.load(Ordering::Relaxed), before);
        // ...until the receiver's periodic re-join regrafts the tree.
        sim.run_until(SimTime::from_secs(10));
        assert!(got.load(Ordering::Relaxed) > before, "traffic must resume after repair");
    }

    #[test]
    fn crash_swallows_timers_and_restart_notifies_apps() {
        struct Ticker {
            ticks: Arc<AtomicU64>,
            restarts: Arc<AtomicU64>,
        }
        impl App for Ticker {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_secs(1), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
                self.ticks.fetch_add(1, Ordering::Relaxed);
                ctx.set_timer(SimDuration::from_secs(1), 0);
            }
            fn on_restart(&mut self, ctx: &mut Ctx<'_>) {
                self.restarts.fetch_add(1, Ordering::Relaxed);
                ctx.set_timer(SimDuration::from_secs(1), 0);
            }
        }
        let (mut sim, a, _c) = two_node_sim();
        let ticks = Arc::new(AtomicU64::new(0));
        let restarts = Arc::new(AtomicU64::new(0));
        sim.add_app(
            a,
            Box::new(Ticker { ticks: Arc::clone(&ticks), restarts: Arc::clone(&restarts) }),
        );
        let plan =
            FaultPlan::new().node_outage(a, SimTime::from_millis(2500), SimTime::from_millis(4500));
        sim.install_faults(&plan);
        sim.run_until(SimTime::from_secs(8));
        // Ticks at 1 s and 2 s; the 3 s timer is swallowed by the crash and
        // the chain breaks, then on_restart re-arms: ticks at 5.5/6.5/7.5 s.
        assert_eq!(ticks.load(Ordering::Relaxed), 5);
        assert_eq!(restarts.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn inert_fault_plans_leave_the_run_identical() {
        let run = |plan: Option<FaultPlan>| {
            let (mut sim, a, c) = two_node_sim();
            let g = sim.create_group(a);
            let got = Arc::new(AtomicU64::new(0));
            sim.add_app(c, Box::new(Counter { group: g, got }));
            sim.add_app(a, Box::new(Burst { group: g, n: 20 }));
            if let Some(p) = &plan {
                sim.install_faults(p);
            }
            sim.run_until(SimTime::from_secs(30));
            sim.events_processed()
        };
        let baseline = run(None);
        assert_eq!(run(Some(FaultPlan::new())), baseline);
        // Faults scheduled beyond the horizon never fire.
        let late = FaultPlan::new().at(SimTime::from_secs(100), FaultKind::NodeCrash(NodeId(0)));
        assert_eq!(run(Some(late)), baseline);
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        let run = |backend: QueueBackend| {
            let mut b = NetworkBuilder::new(SimConfig { queue: backend, ..SimConfig::default() });
            let a = b.add_node("a");
            let m = b.add_node("m");
            let c = b.add_node("c");
            let am = b.add_link(a, m, LinkConfig::kbps(64.0));
            let mc = b.add_link(m, c, LinkConfig::kbps(64.0));
            let mut sim = b.build();
            let g = sim.create_group(a);
            let got = Arc::new(AtomicU64::new(0));
            sim.add_app(c, Box::new(Counter { group: g, got: Arc::clone(&got) }));
            sim.add_app(a, Box::new(TimedBurst { group: g, at: SimDuration::from_secs(1), n: 40 }));
            let plan = FaultPlan::new().chaos(
                11,
                &[am, mc],
                &[m],
                SimTime::from_secs(2),
                SimTime::from_secs(20),
                6,
            );
            sim.install_faults(&plan);
            sim.run_until(SimTime::from_secs(40));
            (sim.events_processed(), got.load(Ordering::Relaxed), sim.packets_live())
        };
        let wheel = run(QueueBackend::CalendarWheel);
        assert_eq!(wheel, run(QueueBackend::CalendarWheel));
        // The heap oracle produces the identical run.
        assert_eq!(wheel, run(QueueBackend::BinaryHeap));
        assert_eq!(wheel.2, 0, "faulted run must not leak packets");
    }

    #[test]
    fn profile_buckets_events_and_drop_reasons() {
        // Overload run: all loss is congestion (queue_full).
        let mut b = NetworkBuilder::new(SimConfig::default());
        let a = b.add_node("a");
        let c = b.add_node("c");
        let (ab, _) = b.add_link(a, c, LinkConfig::kbps(32.0).with_queue(2));
        let mut sim = b.build();
        let g = sim.create_group(a);
        let got = Arc::new(AtomicU64::new(0));
        sim.add_app(c, Box::new(Counter { group: g, got }));
        sim.add_app(a, Box::new(TimedBurst { group: g, at: SimDuration::from_secs(1), n: 10 }));
        sim.run_until(SimTime::from_secs(30));
        let p = sim.profile();
        assert_eq!(p.drops_queue_full, 7);
        assert_eq!(p.drops_link_down, 0);
        assert_eq!(p.drops_node_down, 0);
        assert_eq!(p.drops_queue_full, sim.network().link(ab).stats.dropped_packets);
        let by_type = p.ev_link_tx_done
            + p.ev_link_deliver
            + p.ev_inject
            + p.ev_timer
            + p.ev_graft_done
            + p.ev_prune_done
            + p.ev_fault;
        assert_eq!(by_type, p.events_total, "per-type counts must sum to the total");
        assert_eq!(p.events_total, sim.events_processed());
        assert!(p.slab_hwm > 0, "the burst must have allocated slab slots");
        assert_eq!(p.slab_live, 0, "drained run holds no live packets");
        assert!(p.pending_events_hwm >= 2);
        assert_eq!(p.max_link_queue_hwm, 2, "queue of 2 filled to the brim");

        // Fault run: the aborted in-flight packet and the flushed queue are
        // link_down loss, not congestion.
        let mut b = NetworkBuilder::new(SimConfig::default());
        let a = b.add_node("a");
        let c = b.add_node("c");
        let (ab, _) = b.add_link(a, c, LinkConfig::kbps(32.0));
        let mut sim = b.build();
        let g = sim.create_group(a);
        let got = Arc::new(AtomicU64::new(0));
        sim.add_app(c, Box::new(Counter { group: g, got }));
        sim.add_app(a, Box::new(TimedBurst { group: g, at: SimDuration::from_secs(1), n: 3 }));
        let plan = FaultPlan::new()
            .at(SimTime::from_millis(1300), FaultKind::LinkDown(ab))
            .at(SimTime::from_secs(3), FaultKind::LinkUp(ab));
        sim.install_faults(&plan);
        sim.run_until(SimTime::from_secs(5));
        let p = sim.profile();
        assert_eq!(p.drops_queue_full, 0);
        assert_eq!(p.drops_link_down, 2);
        assert_eq!(p.drops_node_down, 0);
        assert_eq!(p.ev_fault, 2);
    }

    #[test]
    fn determinism_same_seed_same_event_count() {
        let run = || {
            let (mut sim, a, c) = two_node_sim();
            let g = sim.create_group(a);
            let got = Arc::new(AtomicU64::new(0));
            sim.add_app(c, Box::new(Counter { group: g, got }));
            sim.add_app(a, Box::new(Burst { group: g, n: 50 }));
            sim.run_until(SimTime::from_secs(60));
            sim.events_processed()
        };
        assert_eq!(run(), run());
    }
}
