//! The event queue at the heart of the simulator.
//!
//! A binary min-heap keyed on `(time, sequence)`. The monotonically
//! increasing sequence number breaks ties deterministically: two events
//! scheduled for the same instant fire in the order they were scheduled,
//! which is what makes whole runs reproducible bit-for-bit.

use crate::app::AppId;
use crate::faults::FaultKind;
use crate::link::DirLinkId;
use crate::multicast::GroupId;
use crate::node::NodeId;
use crate::packet::Packet;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Everything that can happen in the simulated world.
#[derive(Debug)]
pub enum Event {
    /// A link finished serializing the packet at the head of its queue.
    LinkTxDone(DirLinkId),
    /// A packet arrives at a node after crossing a link.
    Arrive { node: NodeId, from_link: Option<DirLinkId>, packet: Packet },
    /// An application timer fires with an app-chosen token.
    Timer { app: AppId, token: u64 },
    /// A multicast graft completes: `link` starts carrying `group`.
    GraftDone { group: GroupId, link: DirLinkId },
    /// A multicast prune completes: `link` stops carrying `group`
    /// (unless membership re-appeared in the meantime).
    PruneDone { group: GroupId, link: DirLinkId },
    /// A scheduled fault fires (see [`crate::faults::FaultPlan`]).
    Fault(FaultKind),
}

struct Entry {
    time: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the earliest first.
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic future-event list.
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    next_seq: u64,
    scheduled: u64,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::with_capacity(1024), next_seq: 0, scheduled: 0 }
    }

    /// Schedule `event` to fire at `time`.
    pub fn schedule(&mut self, time: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Pop the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (diagnostics).
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn timer(token: u64) -> Event {
        Event::Timer { app: AppId(0), token }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), timer(3));
        q.schedule(SimTime::from_secs(1), timer(1));
        q.schedule(SimTime::from_secs(2), timer(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for token in 0..100 {
            q.schedule(t, timer(token));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), timer(10));
        q.schedule(SimTime::from_secs(1), timer(1));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(1));
        q.schedule(t + SimDuration::from_secs(2), timer(3));
        let (t2, _) = q.pop().unwrap();
        assert_eq!(t2, SimTime::from_secs(3));
        assert_eq!(q.len(), 1);
        assert_eq!(q.total_scheduled(), 3);
    }

    #[test]
    fn empty_queue() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
        assert!(q.peek_time().is_none());
    }
}
