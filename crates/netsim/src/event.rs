//! The event queue at the heart of the simulator.
//!
//! Events are keyed on `(time, sequence)`. The monotonically increasing
//! sequence number breaks ties deterministically: two events scheduled for
//! the same instant fire in the order they were scheduled, which is what
//! makes whole runs reproducible bit-for-bit.
//!
//! Two interchangeable backends implement that contract:
//!
//! * [`QueueBackend::CalendarWheel`] (default) — a hierarchical calendar
//!   queue in the ns-2 tradition: 6 levels × 64 slots with per-level
//!   occupancy bitmaps. Level 0 buckets 2^16 ns (≈65 µs) of simulated time
//!   per slot; each level above widens slots 64×, so the wheel spans ~52
//!   simulated days before spilling into an unordered overflow bucket.
//!   Schedule and pop are O(1) amortized: an event is filed at the lowest
//!   level whose current rotation can hold it, cascades toward level 0 as
//!   the cursor approaches, and is popped by a bitmap scan instead of a
//!   heap sift. A level-0 slot is sorted by `(time, seq)` the first time
//!   the cursor reaches it and drains from the back, so even the hundreds
//!   of same-instant events a symmetric multicast fan-out produces cost
//!   O(1) per pop.
//! * [`QueueBackend::BinaryHeap`] — the original binary-heap future-event
//!   list, kept as the **differential oracle**: `tests/netsim_differential.rs`
//!   proves runs are byte-identical under either backend.

use crate::app::AppId;
use crate::faults::FaultKind;
use crate::link::DirLinkId;
use crate::multicast::GroupId;
use crate::node::NodeId;
use crate::packet::PacketId;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Everything that can happen in the simulated world.
///
/// Variants carry ids only — a full `Event` is 24 bytes, so queue reshuffles
/// move machine words, not packet structs (payloads live in the
/// [`crate::packet::PacketSlab`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// A link finished serializing the packet at the head of its queue.
    LinkTxDone(DirLinkId),
    /// The self-rescheduling link-drain event: the packet at the head of a
    /// link's wire FIFO reaches the far node. One of these is pending per
    /// link iff the link's wire is non-empty, so back-to-back packets on a
    /// busy link cost one queue operation each, not two.
    LinkDeliver(DirLinkId),
    /// An application injected a packet at its own node (no incoming link);
    /// the ordinary forwarding path takes it from there.
    Inject { node: NodeId, packet: PacketId },
    /// An application timer fires with an app-chosen token.
    Timer { app: AppId, token: u64 },
    /// A multicast graft completes: `link` starts carrying `group`.
    GraftDone { group: GroupId, link: DirLinkId },
    /// A multicast prune completes: `link` stops carrying `group`
    /// (unless membership re-appeared in the meantime).
    PruneDone { group: GroupId, link: DirLinkId },
    /// A scheduled fault fires (see [`crate::faults::FaultPlan`]).
    Fault(FaultKind),
}

/// Which future-event-list implementation a simulation uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QueueBackend {
    /// Hierarchical calendar/timer-wheel queue (fast path).
    #[default]
    CalendarWheel,
    /// The original binary min-heap, retained as the differential oracle.
    BinaryHeap,
}

/// Calendar-wheel activity counters — the profiler's view of where queue
/// work goes (cascade traffic and lazy-sort pressure are what the sharded-
/// simulator roadmap item needs to size per-domain wheels). Pure observers:
/// they never influence scheduling. All zeros on the heap backend.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WheelStats {
    /// Upper-level slots cascaded down as the cursor reached them.
    pub cascades: u64,
    /// Entries re-filed by those cascades.
    pub cascaded_entries: u64,
    /// Level-0 slots sorted lazily on first pop.
    pub lazy_sorts: u64,
    /// Entries filed into the unordered overflow bucket (beyond the wheel
    /// horizon), including re-filings when the bucket respills.
    pub overflow_filed: u64,
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    time: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the earliest first.
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Log2 of the level-0 slot width: 2^16 ns ≈ 65.5 µs per tick.
const GRAN_BITS: u32 = 16;
/// Log2 of the slots per level.
const LEVEL_BITS: u32 = 6;
const SLOTS: usize = 1 << LEVEL_BITS;
const LEVELS: usize = 6;

/// Hierarchical timer wheel. All arithmetic is on raw nanosecond counts.
///
/// Invariants:
/// * `cursor` never exceeds the time of any pending entry, and never moves
///   backwards, so every entry filed at level `L` stays within the 64-slot
///   window `[cursor_slot_L, cursor_slot_L + 63]` for its whole residence —
///   slot indices (`abs_slot & 63`) are unambiguous.
/// * An entry is filed at the lowest level whose window can hold it;
///   entries beyond the top level's window live in `overflow` (unordered)
///   until the cursor comes within the top level's horizon of the bucket's
///   earliest time, at which point the bucket respills into the wheel.
struct CalendarWheel {
    /// `LEVELS * SLOTS` buckets; unordered within a slot.
    slots: Vec<Vec<Entry>>,
    /// Per-level occupancy bitmaps: bit `i` set iff slot `i` is non-empty.
    occupied: [u64; LEVELS],
    /// Level-0 slots currently held in descending `(time, seq)` order, so
    /// the earliest entry is at the back and a burst of same-tick events
    /// (multicast fan-out on a symmetric tree produces hundreds) drains in
    /// O(1) pops instead of a rescan per pop. An unsorted slot is sorted
    /// lazily the first time the cursor reaches it; once sorted, inserts
    /// keep the order by binary search.
    sorted: u64,
    /// Level-0 slot currently draining, if any. While it is non-empty it
    /// provably holds the global minimum (every other slot is a later tick,
    /// and same-tick inserts merge into it in order), so pops skip the
    /// per-level candidate scan entirely.
    active: Option<u8>,
    /// Current position in nanoseconds (lower bound on all pending times).
    cursor: u64,
    /// Entries beyond the top level's horizon (~52 simulated days out).
    overflow: Vec<Entry>,
    /// Earliest time in `overflow` (`u64::MAX` when empty) — checked on
    /// every slow-path pop so the bucket respills the moment its minimum
    /// re-enters the wheel's horizon, not only once the wheel drains.
    overflow_min: u64,
    /// Reused buffer for cascading a slot without reallocating.
    cascade_buf: Vec<Entry>,
    len: usize,
    /// Profiler counters ([`WheelStats`]) — write-only observers.
    stats: WheelStats,
}

#[inline]
fn shift(level: usize) -> u32 {
    GRAN_BITS + LEVEL_BITS * level as u32
}

impl CalendarWheel {
    fn new() -> Self {
        CalendarWheel {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            sorted: 0,
            active: None,
            cursor: 0,
            overflow: Vec::new(),
            overflow_min: u64::MAX,
            cascade_buf: Vec::new(),
            len: 0,
            stats: WheelStats::default(),
        }
    }

    /// File an entry at the lowest level whose current window holds it.
    fn file(&mut self, e: Entry) {
        let t = e.time.nanos();
        debug_assert!(t >= self.cursor, "entry files behind the cursor");
        for level in 0..LEVELS {
            let s = shift(level);
            if (t >> s).saturating_sub(self.cursor >> s) < SLOTS as u64 {
                let idx = ((t >> s) & (SLOTS as u64 - 1)) as usize;
                if level == 0 {
                    let bit = 1u64 << idx;
                    let slot = &mut self.slots[idx];
                    if slot.is_empty() {
                        // Defer sorting to the first pop: a cascading burst
                        // appends O(1) per entry and gets one sort, instead
                        // of paying a binary-insert memmove per entry.
                        slot.push(e);
                        self.sorted &= !bit;
                    } else if self.sorted & bit != 0 {
                        let key = (e.time, e.seq);
                        let pos = slot.partition_point(|x| (x.time, x.seq) > key);
                        slot.insert(pos, e);
                    } else {
                        slot.push(e);
                    }
                } else {
                    self.slots[level * SLOTS + idx].push(e);
                }
                self.occupied[level] |= 1 << idx;
                return;
            }
        }
        self.stats.overflow_filed += 1;
        self.overflow_min = self.overflow_min.min(t);
        self.overflow.push(e);
    }

    /// Refile the whole overflow bucket; entries still beyond the horizon
    /// land back in (the now-fresh) `overflow`, the rest enter the wheel.
    fn respill_overflow(&mut self) {
        let mut spill = std::mem::take(&mut self.overflow);
        self.overflow_min = u64::MAX;
        for e in spill.drain(..) {
            self.file(e);
        }
        if self.overflow.is_empty() {
            self.overflow = spill; // keep the allocated buffer
        }
    }

    fn insert(&mut self, e: Entry) {
        self.file(e);
        self.len += 1;
    }

    /// For each level, the start time of the nearest occupied slot (in
    /// circular order from the cursor), or `None` if the level is empty.
    #[inline]
    fn candidate(&self, level: usize) -> Option<u64> {
        let bits = self.occupied[level];
        if bits == 0 {
            return None;
        }
        let s = shift(level);
        let cur = self.cursor >> s;
        let off = (cur & (SLOTS as u64 - 1)) as u32;
        // Rotate so the cursor's slot is bit 0; trailing_zeros is then the
        // circular distance to the nearest occupied slot in the window.
        let dist = bits.rotate_right(off).trailing_zeros() as u64;
        Some((cur + dist) << s)
    }

    fn pop(&mut self) -> Option<Entry> {
        if self.len == 0 {
            return None;
        }
        // Fast path: keep draining the already-selected (and sorted) slot.
        if let Some(idx) = self.active {
            let slot = &mut self.slots[idx as usize];
            let entry = slot.pop().expect("active slot is non-empty");
            if slot.is_empty() {
                self.occupied[0] &= !(1u64 << idx);
                self.active = None;
            }
            self.len -= 1;
            return Some(entry);
        }
        loop {
            // Respill the overflow bucket the moment its earliest entry
            // re-enters the top level's window. Waiting for the wheel to
            // drain completely (the old behaviour) let an in-wheel entry
            // scheduled *later* — with a later time, or the same time and
            // a higher seq — pop ahead of an overflow entry whose horizon
            // had already arrived: ordering drift vs the heap oracle.
            if !self.overflow.is_empty() {
                let s = shift(LEVELS - 1);
                if self.occupied.iter().all(|&b| b == 0) {
                    // Wheel empty: jump straight to the earliest overflow
                    // entry so at least it lands inside the window.
                    self.cursor = self.cursor.max(self.overflow_min);
                }
                if (self.overflow_min >> s).saturating_sub(self.cursor >> s) < SLOTS as u64 {
                    self.respill_overflow();
                    continue;
                }
            }
            // Best = earliest slot start over all levels; ties go to the
            // higher level so wide slots cascade before narrow ones pop
            // (a level-1 slot starting at the same instant as a level-0
            // slot may hold an even earlier entry).
            let mut best: Option<(u64, usize)> = None;
            for level in 0..LEVELS {
                if let Some(start) = self.candidate(level) {
                    if best.is_none_or(|(bs, _)| start <= bs) {
                        best = Some((start, level));
                    }
                }
            }
            let Some((start, level)) = best else {
                // len > 0 with an empty wheel means everything lived in
                // overflow, and the respill above already moved the
                // earliest entry in.
                unreachable!("pending entries but wheel and overflow both empty");
            };
            self.cursor = self.cursor.max(start);
            let s = shift(level);
            let idx = ((start >> s) & (SLOTS as u64 - 1)) as usize;
            if level == 0 {
                let bit = 1u64 << idx;
                let slot = &mut self.slots[idx];
                if self.sorted & bit == 0 {
                    // First pop from this slot since an unsorted insert:
                    // order it descending once, then drain from the back.
                    slot.sort_unstable_by_key(|e| std::cmp::Reverse((e.time, e.seq)));
                    self.sorted |= bit;
                    self.stats.lazy_sorts += 1;
                }
                let entry = slot.pop().expect("candidate slot is non-empty");
                if slot.is_empty() {
                    self.occupied[0] &= !bit;
                } else {
                    self.active = Some(idx as u8);
                }
                self.len -= 1;
                return Some(entry);
            }
            // Cascade the whole slot down now that the cursor reached it.
            let mut buf = std::mem::take(&mut self.cascade_buf);
            std::mem::swap(&mut buf, &mut self.slots[level * SLOTS + idx]);
            self.occupied[level] &= !(1 << idx);
            self.stats.cascades += 1;
            self.stats.cascaded_entries += buf.len() as u64;
            for e in buf.drain(..) {
                self.file(e);
            }
            self.cascade_buf = buf;
        }
    }

    /// Pop the earliest entry iff its time is `<= deadline`, committing *no*
    /// cursor movement past the deadline otherwise.
    ///
    /// This is not an optimization of `pop` + re-insert: that pair advances
    /// the cursor to the future entry's slot, which forbids ever scheduling
    /// anything earlier again. Epoch-based callers (the sharded runner)
    /// alternate `run_until(epoch)` with cross-shard injections just after
    /// the epoch boundary — legal times, but behind where a careless pop
    /// would have parked the cursor. Bounding every cursor advance by
    /// `deadline` keeps the wheel's invariant exactly as strong as the
    /// caller's contract (nothing is ever scheduled before the last
    /// deadline it finished).
    fn pop_due(&mut self, deadline: SimTime) -> Option<Entry> {
        if self.len == 0 {
            return None;
        }
        // Fast path: the active slot is sorted descending; its back is the
        // earliest pending entry overall.
        if let Some(idx) = self.active {
            let slot = &mut self.slots[idx as usize];
            if slot.last().expect("active slot is non-empty").time > deadline {
                return None;
            }
            let entry = slot.pop().expect("active slot is non-empty");
            if slot.is_empty() {
                self.occupied[0] &= !(1u64 << idx);
                self.active = None;
            }
            self.len -= 1;
            return Some(entry);
        }
        loop {
            if !self.overflow.is_empty() {
                let s = shift(LEVELS - 1);
                if self.occupied.iter().all(|&b| b == 0) {
                    // Wheel empty: everything pending is in overflow. If even
                    // the earliest overflow entry is past the deadline, stop
                    // without touching the cursor.
                    if SimTime(self.overflow_min) > deadline {
                        return None;
                    }
                    self.cursor = self.cursor.max(self.overflow_min);
                }
                if (self.overflow_min >> s).saturating_sub(self.cursor >> s) < SLOTS as u64 {
                    self.respill_overflow();
                    continue;
                }
            }
            let mut best: Option<(u64, usize)> = None;
            for level in 0..LEVELS {
                if let Some(start) = self.candidate(level) {
                    if best.is_none_or(|(bs, _)| start <= bs) {
                        best = Some((start, level));
                    }
                }
            }
            let Some((start, level)) = best else {
                unreachable!("pending entries but wheel and overflow both empty");
            };
            // Every entry in the best slot is at or after the slot start; if
            // even that is past the deadline, nothing is due. The cursor has
            // not moved beyond previously-popped ground.
            if SimTime(start) > deadline {
                return None;
            }
            self.cursor = self.cursor.max(start);
            let s = shift(level);
            let idx = ((start >> s) & (SLOTS as u64 - 1)) as usize;
            if level == 0 {
                let bit = 1u64 << idx;
                let slot = &mut self.slots[idx];
                if self.sorted & bit == 0 {
                    slot.sort_unstable_by_key(|e| std::cmp::Reverse((e.time, e.seq)));
                    self.sorted |= bit;
                    self.stats.lazy_sorts += 1;
                }
                // A level-0 slot spans 64 ns of granularity: its earliest
                // entry can still exceed the deadline.
                if slot.last().expect("candidate slot is non-empty").time > deadline {
                    return None;
                }
                let entry = slot.pop().expect("candidate slot is non-empty");
                if slot.is_empty() {
                    self.occupied[0] &= !bit;
                } else {
                    self.active = Some(idx as u8);
                }
                self.len -= 1;
                return Some(entry);
            }
            // Cascade the whole slot down now that the cursor reached it.
            let mut buf = std::mem::take(&mut self.cascade_buf);
            std::mem::swap(&mut buf, &mut self.slots[level * SLOTS + idx]);
            self.occupied[level] &= !(1 << idx);
            self.stats.cascades += 1;
            self.stats.cascaded_entries += buf.len() as u64;
            for e in buf.drain(..) {
                self.file(e);
            }
            self.cascade_buf = buf;
        }
    }

    /// Validate occupancy bitmaps, len accounting, and window bounds
    /// (test-only: O(slots + pending) per call).
    #[cfg(test)]
    fn audit(&self) {
        let mut count = self.overflow.len();
        for level in 0..LEVELS {
            let s = shift(level);
            for idx in 0..SLOTS {
                let slot = &self.slots[level * SLOTS + idx];
                count += slot.len();
                let bit = self.occupied[level] & (1 << idx) != 0;
                assert_eq!(bit, !slot.is_empty(), "bitmap desync level={level} idx={idx}");
                for e in slot {
                    let t = e.time.nanos();
                    assert!(t >= self.cursor, "entry behind cursor level={level} idx={idx}");
                    let delta = (t >> s) - (self.cursor >> s);
                    assert!(
                        delta < SLOTS as u64,
                        "entry out of window level={level} idx={idx} delta={delta}"
                    );
                    assert_eq!((t >> s) & (SLOTS as u64 - 1), idx as u64, "entry in wrong slot");
                }
                if level == 0 && self.sorted & (1 << idx) != 0 {
                    assert!(
                        slot.windows(2).all(|w| (w[0].time, w[0].seq) > (w[1].time, w[1].seq)),
                        "sorted slot out of order idx={idx}"
                    );
                }
            }
        }
        let min_o = self.overflow.iter().map(|e| e.time.nanos()).min().unwrap_or(u64::MAX);
        assert_eq!(self.overflow_min, min_o, "overflow_min desync");
        if let Some(idx) = self.active {
            assert!(!self.slots[idx as usize].is_empty(), "active slot is empty");
            assert!(self.sorted & (1 << idx) != 0, "active slot not sorted");
            assert_eq!((self.cursor >> GRAN_BITS) & (SLOTS as u64 - 1), idx as u64);
        }
        assert_eq!(count, self.len, "len desync");
    }

    /// O(pending) scan for the earliest time; diagnostics only.
    fn peek_time(&self) -> Option<SimTime> {
        self.slots.iter().flatten().chain(self.overflow.iter()).map(|e| e.time).min()
    }
}

enum Backing {
    Wheel(CalendarWheel),
    Heap(BinaryHeap<Entry>),
}

/// Deterministic future-event list.
pub struct EventQueue {
    backing: Backing,
    next_seq: u64,
    scheduled: u64,
    /// Most events ever pending at once (profiler high-water mark).
    pending_hwm: usize,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    pub fn new() -> Self {
        Self::with_backend(QueueBackend::default())
    }

    /// Construct with an explicit backend (see [`QueueBackend`]).
    pub fn with_backend(backend: QueueBackend) -> Self {
        let backing = match backend {
            QueueBackend::CalendarWheel => Backing::Wheel(CalendarWheel::new()),
            QueueBackend::BinaryHeap => Backing::Heap(BinaryHeap::new()),
        };
        EventQueue { backing, next_seq: 0, scheduled: 0, pending_hwm: 0 }
    }

    /// Which backend this queue runs on.
    pub fn backend(&self) -> QueueBackend {
        match self.backing {
            Backing::Wheel(_) => QueueBackend::CalendarWheel,
            Backing::Heap(_) => QueueBackend::BinaryHeap,
        }
    }

    /// Pre-size for about `n` concurrently pending events (the simulator
    /// calls this with links + apps once the topology is frozen).
    pub fn reserve(&mut self, n: usize) {
        match &mut self.backing {
            Backing::Wheel(w) => w.overflow.reserve(n.min(1024)),
            Backing::Heap(h) => h.reserve(n),
        }
    }

    /// Schedule `event` to fire at `time`.
    pub fn schedule(&mut self, time: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        let entry = Entry { time, seq, event };
        match &mut self.backing {
            Backing::Wheel(w) => w.insert(entry),
            Backing::Heap(h) => h.push(entry),
        }
        self.pending_hwm = self.pending_hwm.max(self.len());
    }

    /// Pop the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        match &mut self.backing {
            Backing::Wheel(w) => w.pop(),
            Backing::Heap(h) => h.pop(),
        }
        .map(|e| (e.time, e.event))
    }

    /// Pop the earliest event iff it fires at or before `deadline` — a
    /// single queue access on the run loop's hot path instead of
    /// peek-then-pop. Events past the deadline stay pending.
    pub fn pop_due(&mut self, deadline: SimTime) -> Option<(SimTime, Event)> {
        match &mut self.backing {
            Backing::Wheel(w) => w.pop_due(deadline).map(|e| (e.time, e.event)),
            Backing::Heap(h) => {
                if h.peek().is_some_and(|e| e.time <= deadline) {
                    h.pop().map(|e| (e.time, e.event))
                } else {
                    None
                }
            }
        }
    }

    /// The time of the earliest pending event. O(1) on the heap backend,
    /// O(pending) on the wheel — diagnostics, not the run loop.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.backing {
            Backing::Wheel(w) => w.peek_time(),
            Backing::Heap(h) => h.peek().map(|e| e.time),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.backing {
            Backing::Wheel(w) => w.len,
            Backing::Heap(h) => h.len(),
        }
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled (diagnostics).
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Most events ever pending at once.
    pub fn pending_hwm(&self) -> usize {
        self.pending_hwm
    }

    /// Calendar-wheel activity counters; all zeros on the heap backend.
    pub fn wheel_stats(&self) -> WheelStats {
        match &self.backing {
            Backing::Wheel(w) => w.stats,
            Backing::Heap(_) => WheelStats::default(),
        }
    }

    /// Wheel invariant audit (no-op on the heap backend).
    #[cfg(test)]
    fn audit(&self) {
        if let Backing::Wheel(w) = &self.backing {
            w.audit();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RngStream;
    use crate::time::SimDuration;

    const BACKENDS: [QueueBackend; 2] = [QueueBackend::CalendarWheel, QueueBackend::BinaryHeap];

    fn timer(token: u64) -> Event {
        Event::Timer { app: AppId(0), token }
    }

    fn tokens(q: &mut EventQueue) -> Vec<u64> {
        std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect()
    }

    #[test]
    fn pops_in_time_order() {
        for backend in BACKENDS {
            let mut q = EventQueue::with_backend(backend);
            q.schedule(SimTime::from_secs(3), timer(3));
            q.schedule(SimTime::from_secs(1), timer(1));
            q.schedule(SimTime::from_secs(2), timer(2));
            assert_eq!(tokens(&mut q), vec![1, 2, 3], "{backend:?}");
        }
    }

    #[test]
    fn ties_break_by_schedule_order() {
        for backend in BACKENDS {
            let mut q = EventQueue::with_backend(backend);
            let t = SimTime::from_secs(5);
            for token in 0..100 {
                q.schedule(t, timer(token));
            }
            assert_eq!(tokens(&mut q), (0..100).collect::<Vec<_>>(), "{backend:?}");
        }
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        for backend in BACKENDS {
            let mut q = EventQueue::with_backend(backend);
            q.schedule(SimTime::from_secs(10), timer(10));
            q.schedule(SimTime::from_secs(1), timer(1));
            let (t, _) = q.pop().unwrap();
            assert_eq!(t, SimTime::from_secs(1));
            q.schedule(t + SimDuration::from_secs(2), timer(3));
            let (t2, _) = q.pop().unwrap();
            assert_eq!(t2, SimTime::from_secs(3));
            assert_eq!(q.len(), 1);
            assert_eq!(q.total_scheduled(), 3);
        }
    }

    #[test]
    fn empty_queue() {
        for backend in BACKENDS {
            let mut q = EventQueue::with_backend(backend);
            assert!(q.is_empty());
            assert!(q.pop().is_none());
            assert!(q.peek_time().is_none());
            assert!(q.pop_due(SimTime::MAX).is_none());
        }
    }

    #[test]
    fn pop_due_respects_deadline_without_losing_events() {
        for backend in BACKENDS {
            let mut q = EventQueue::with_backend(backend);
            q.schedule(SimTime::from_secs(2), timer(2));
            q.schedule(SimTime::from_secs(1), timer(1));
            let (t, _) = q.pop_due(SimTime::from_secs(1)).unwrap();
            assert_eq!(t, SimTime::from_secs(1));
            // The 2 s event is past the deadline: stays pending, order kept.
            assert!(q.pop_due(SimTime::from_secs(1)).is_none());
            assert_eq!(q.len(), 1);
            assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
            let (t2, _) = q.pop_due(SimTime::from_secs(2)).unwrap();
            assert_eq!(t2, SimTime::from_secs(2));
        }
    }

    /// Satellite: seq tie-break must survive bucket boundaries. Same-instant
    /// events are scheduled at times chosen to straddle level-0 slot edges,
    /// level boundaries, and cascade points of the wheel.
    #[test]
    fn same_instant_ordering_across_bucket_boundaries() {
        // One tick = 2^16 ns; one level-0 rotation = 2^22 ns.
        let tick = 1u64 << 16;
        let rotation = 1u64 << 22;
        let interesting = [
            0,
            tick - 1,
            tick,
            tick + 1,
            rotation - 1,
            rotation,
            rotation + 1,
            3 * rotation + 17,
            (1 << 28) - 1, // level-1 rotation edge
            1 << 28,
            (1 << 34) + 5, // level-2 territory
            (1 << 52) + 9, // beyond the wheel horizon: overflow bucket
        ];
        let mut q = EventQueue::with_backend(QueueBackend::CalendarWheel);
        let mut expect: Vec<(u64, u64)> = Vec::new();
        let mut token = 0;
        // Schedule three same-instant events per time, interleaved across
        // times so the tie-break cannot lean on insertion locality.
        for round in 0..3 {
            for &t in &interesting {
                q.schedule(SimTime(t), timer(token));
                expect.push((t, token));
                token += 1;
            }
            let _ = round;
        }
        expect.sort_by_key(|&(t, tok)| (t, tok));
        let got: Vec<(u64, u64)> = std::iter::from_fn(|| q.pop())
            .map(|(t, e)| match e {
                Event::Timer { token, .. } => (t.nanos(), token),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn wheel_stats_count_cascades_sorts_and_overflow() {
        let mut q = EventQueue::with_backend(QueueBackend::CalendarWheel);
        // Same-tick burst: one lazy sort on first pop.
        for token in 0..10 {
            q.schedule(SimTime(5), timer(token));
        }
        // Far-future entry: lands above level 0 and cascades on the way out.
        q.schedule(SimTime(1 << 30), timer(100));
        // Beyond the wheel horizon: overflow bucket.
        q.schedule(SimTime(1 << 55), timer(101));
        assert_eq!(q.pending_hwm(), 12);
        while q.pop().is_some() {}
        let s = q.wheel_stats();
        assert!(s.lazy_sorts >= 1, "same-tick burst must lazy-sort: {s:?}");
        assert!(s.cascades >= 1 && s.cascaded_entries >= 1, "upper level must cascade: {s:?}");
        assert_eq!(s.overflow_filed, 1, "one entry beyond the horizon: {s:?}");
        // The heap backend reports zeros (it has no wheel machinery).
        let mut h = EventQueue::with_backend(QueueBackend::BinaryHeap);
        h.schedule(SimTime(1), timer(0));
        assert_eq!(h.wheel_stats(), WheelStats::default());
        assert_eq!(h.pending_hwm(), 1);
    }

    /// Regression for the overflow refile path: an overflow-bucket entry
    /// whose time has come inside the wheel's horizon must pop before any
    /// later-scheduled in-wheel entry — including the tie-on-time case,
    /// where the overflow entry's lower seq must win. The old code only
    /// respilled once the wheel was *empty*, so a non-empty wheel let a
    /// later event jump the queue.
    #[test]
    fn overflow_entry_pops_in_order_once_horizon_arrives() {
        let horizon = 1u64 << (GRAN_BITS + LEVEL_BITS * LEVELS as u32);
        let far = horizon + (1 << 20); // beyond the horizon as seen from 0
        for in_wheel_dt in [1u64, 0] {
            // dt=1: strictly-later in-wheel event; dt=0: same-time,
            // higher-seq in-wheel event. Both must pop *after* the
            // overflow entry.
            let mut q = EventQueue::with_backend(QueueBackend::CalendarWheel);
            q.schedule(SimTime(far), timer(0)); // -> overflow bucket
                                                // A stepping stone the cursor can advance through so `far`
                                                // comes inside the horizon while the wheel stays non-empty.
            q.schedule(SimTime(far - (1 << 30)), timer(1));
            let (t, _) = q.pop().unwrap();
            assert_eq!(t.nanos(), far - (1 << 30));
            // The cursor now sits well within the horizon of `far`; an
            // event scheduled in-wheel at (or just after) `far` must not
            // overtake the overflow entry.
            q.schedule(SimTime(far + in_wheel_dt), timer(2));
            q.audit();
            let order: Vec<u64> = tokens(&mut q);
            assert_eq!(order, vec![0, 2], "in_wheel_dt={in_wheel_dt}");
        }
    }

    /// Randomized differential: the wheel must agree with the heap oracle
    /// pop-for-pop under interleaved schedule/pop traffic.
    #[test]
    fn wheel_matches_heap_under_random_interleaving() {
        let mut rng = RngStream::derive(0xC0FFEE, "event/differential");
        let mut wheel = EventQueue::with_backend(QueueBackend::CalendarWheel);
        let mut heap = EventQueue::with_backend(QueueBackend::BinaryHeap);
        let mut now = 0u64;
        let mut token = 0u64;
        for _ in 0..20_000 {
            if rng.chance(0.6) || wheel.is_empty() {
                // Mix of near, same-instant, far, and overflow-range times.
                let dt = match rng.range_u64(0, 100) {
                    0..=39 => rng.range_u64(0, 1 << 18),
                    40..=69 => 0,
                    70..=94 => rng.range_u64(0, 1 << 31),
                    _ => rng.range_u64(1 << 50, 1 << 54),
                };
                let t = SimTime(now + dt);
                wheel.schedule(t, timer(token));
                heap.schedule(t, timer(token));
                token += 1;
            } else {
                let a = wheel.pop();
                let b = heap.pop();
                assert_eq!(a, b);
                if let Some((t, _)) = a {
                    now = t.nanos();
                }
            }
        }
        // Drain both queues; audit the wheel's internal invariants as the
        // cursor sweeps the full range (this is what caught the overflow
        // re-spill bug: refiling far-future entries used to clobber the
        // overflow bucket).
        loop {
            wheel.audit();
            let a = wheel.pop();
            let b = heap.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
