//! Application agents and their interface to the simulated world.
//!
//! Everything above the network — media sources, receivers, the TopoSense
//! controller, baseline controllers — is an [`App`] attached to a node. Apps
//! are event-driven: the simulator calls them when a packet is delivered or
//! a timer fires, and they act on the world exclusively through [`Ctx`]
//! (send packets, join/leave groups, set timers). This mirrors the paper's
//! architecture: agents are *application-level entities; routers in the
//! domain are unaware of their existence*.

use crate::event::{Event, EventQueue};
use crate::multicast::{GroupId, TreeOp};
use crate::node::NodeId;
use crate::packet::{ControlBody, Packet, PacketSlab, SessionId};
use crate::sim::Network;
use crate::time::{SimDuration, SimTime};

/// Index of an application agent.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AppId(pub u32);

impl AppId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An application agent.
///
/// Handlers receive a [`Ctx`] scoped to this app and the current instant.
/// All methods have empty defaults so simple apps implement only what they
/// need.
///
/// `Send` is a supertrait so a whole [`crate::sim::Simulator`] (which owns
/// its apps) can move to a worker thread — the sharded runner executes one
/// simulator per shard under `std::thread::scope`. Apps still run
/// single-threaded within their shard; share observations across threads
/// with `Arc<AtomicU64>`/`Arc<Mutex<..>>` instead of `Rc<Cell<..>>`.
pub trait App: Send {
    /// Called once when the simulation starts (in app-id order).
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx;
    }

    /// A packet addressed to this node / a subscribed group arrived.
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: &Packet) {
        let _ = (ctx, packet);
    }

    /// A timer set through [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let _ = (ctx, token);
    }

    /// The node hosting this app restarted after a crash. Timers set before
    /// the crash were swallowed while the node was down, and the router's
    /// multicast state (including this app's subscriptions) was lost — apps
    /// that want to keep running must re-arm timers and re-join groups here.
    fn on_restart(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx;
    }
}

/// The world as visible to one app during one event.
pub struct Ctx<'a> {
    pub(crate) now: SimTime,
    pub(crate) app: AppId,
    pub(crate) node: NodeId,
    pub(crate) queue: &'a mut EventQueue,
    pub(crate) net: &'a mut Network,
    pub(crate) slab: &'a mut PacketSlab,
}

impl Ctx<'_> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This app's id.
    pub fn app_id(&self) -> AppId {
        self.app
    }

    /// The node this app runs on.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Arrange for [`App::on_timer`] to be called with `token` after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.queue.schedule(self.now + delay, Event::Timer { app: self.app, token });
    }

    /// Multicast a media packet of `layer` in `session` to `group`.
    pub fn send_media(
        &mut self,
        group: GroupId,
        session: SessionId,
        layer: u8,
        seq: u64,
        size: u32,
    ) {
        let pkt = Packet::media(self.node, group, session, layer, seq, size);
        self.originate(pkt);
    }

    /// Unicast an opaque control message to `dest`.
    pub fn send_control(&mut self, dest: NodeId, size: u32, body: ControlBody) {
        let pkt = Packet::control(self.node, dest, size, body);
        self.originate(pkt);
    }

    fn originate(&mut self, packet: Packet) {
        // Injection is modelled as an arrival at the originating node with no
        // incoming link; the ordinary forwarding path takes it from there.
        // The packet moves into the slab here — events only carry its id.
        let id = self.slab.insert(packet);
        self.queue.schedule(self.now, Event::Inject { node: self.node, packet: id });
    }

    /// Re-originate `packet` from `node` after `delay`, rewriting its
    /// source/destination. This is the single-process stand-in for a
    /// cross-shard handoff: the sharded runner carries the packet through a
    /// mailbox and injects it at the destination shard `delay` later, while
    /// the sequential oracle calls `relay` to schedule the identical
    /// injection inside one event queue.
    pub fn relay(&mut self, node: NodeId, delay: SimDuration, packet: &Packet) {
        let id = self.slab.insert(packet.forwarded_to(self.node, node));
        self.queue.schedule(self.now + delay, Event::Inject { node, packet: id });
    }

    /// Subscribe this app to `group` (grafting the distribution tree).
    pub fn join(&mut self, group: GroupId) {
        let ops = self.net.join_group(group, self.node, self.app);
        self.schedule_tree_ops(ops);
    }

    /// Unsubscribe this app from `group` (pruning after the leave latency).
    pub fn leave(&mut self, group: GroupId) {
        let ops = self.net.leave_group(group, self.node, self.app);
        self.schedule_tree_ops(ops);
    }

    fn schedule_tree_ops(&mut self, ops: Vec<TreeOp>) {
        for op in ops {
            match op {
                TreeOp::Graft { group, link, after } => {
                    self.queue.schedule(self.now + after, Event::GraftDone { group, link });
                }
                TreeOp::Prune { group, link, after } => {
                    self.queue.schedule(self.now + after, Event::PruneDone { group, link });
                }
            }
        }
    }

    /// Whether this app is currently subscribed to `group`.
    pub fn is_subscribed(&self, group: GroupId) -> bool {
        self.net.mcast.is_subscribed(group, self.node, self.app)
    }

    /// Read-only access to the network (topology oracles, ground truth).
    pub fn network(&self) -> &Network {
        self.net
    }
}
