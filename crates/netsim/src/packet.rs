//! Packets, addresses, and payloads.
//!
//! Two kinds of traffic cross the simulated network:
//!
//! * **Media** packets, multicast to a per-layer group. They carry a session
//!   id, layer number and per-group sequence number — exactly the fields a
//!   receiver needs to account for loss the way RTCP does (sequence gaps).
//! * **Control** packets, unicast between receivers and the controller agent
//!   (registrations, loss reports, subscription suggestions). Their concrete
//!   message types belong to the protocol crates above; the simulator treats
//!   them as opaque shared payloads with an explicitly declared wire size so
//!   control traffic competes for bandwidth and can be lost, as in the paper.
//!
//! Packets in flight live in a [`PacketSlab`]: events and link queues carry
//! a copyable [`PacketId`] instead of the struct itself, and multicast
//! fan-out replicates ids (bumping a refcount) instead of cloning payloads.

use crate::multicast::GroupId;
use crate::node::NodeId;
use std::any::Any;
use std::fmt;
use std::sync::Arc;

/// A multicast session (one layered stream = a set of groups).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SessionId(pub u32);

/// Opaque, shareable control-message body.
///
/// Protocol crates downcast this to their own message enum. Sharing via
/// `Arc` keeps multicast fan-out and retransmission allocation-free.
pub type ControlBody = Arc<dyn Any + Send + Sync>;

/// Where a packet is headed.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Dest {
    /// Unicast to one node (delivered to all apps on it).
    Node(NodeId),
    /// Multicast to a group.
    Group(GroupId),
}

/// What a packet carries.
#[derive(Clone)]
pub enum Payload {
    /// A media packet of `layer` within `session`, with a per-group
    /// sequence number stamped by the source.
    Media { session: SessionId, layer: u8, seq: u64 },
    /// An opaque control message.
    Control(ControlBody),
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Payload::Media { session, layer, seq } => {
                write!(f, "Media(s{}, l{}, #{})", session.0, layer, seq)
            }
            Payload::Control(_) => write!(f, "Control(..)"),
        }
    }
}

/// One packet in flight.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Originating node.
    pub src: NodeId,
    /// Destination address.
    pub dest: Dest,
    /// Wire size in bytes (headers included); drives serialization time
    /// and queue occupancy.
    pub size: u32,
    /// The payload.
    pub payload: Payload,
}

impl Packet {
    /// Construct a media packet.
    pub fn media(
        src: NodeId,
        group: GroupId,
        session: SessionId,
        layer: u8,
        seq: u64,
        size: u32,
    ) -> Self {
        Packet {
            src,
            dest: Dest::Group(group),
            size,
            payload: Payload::Media { session, layer, seq },
        }
    }

    /// Construct a unicast control packet.
    pub fn control(src: NodeId, dest: NodeId, size: u32, body: ControlBody) -> Self {
        Packet { src, dest: Dest::Node(dest), size, payload: Payload::Control(body) }
    }

    /// The media fields, if this is a media packet.
    pub fn media_fields(&self) -> Option<(SessionId, u8, u64)> {
        match self.payload {
            Payload::Media { session, layer, seq } => Some((session, layer, seq)),
            Payload::Control(_) => None,
        }
    }

    /// Downcast a control payload to a concrete message type.
    pub fn control_as<T: 'static>(&self) -> Option<&T> {
        match &self.payload {
            Payload::Control(body) => body.downcast_ref::<T>(),
            Payload::Media { .. } => None,
        }
    }

    /// A copy of this packet re-addressed for re-origination at a relay:
    /// same size and payload (media fields or shared control body), new
    /// source and unicast destination. Cross-shard handoffs use this to
    /// carry a packet into the destination shard's id space.
    pub fn forwarded_to(&self, src: NodeId, dest: NodeId) -> Packet {
        Packet { src, dest: Dest::Node(dest), size: self.size, payload: self.payload.clone() }
    }

    /// The media layer this packet carries; control packets rank as layer 0
    /// (most protected under priority dropping).
    pub fn layer(&self) -> u8 {
        match self.payload {
            Payload::Media { layer, .. } => layer,
            Payload::Control(_) => 0,
        }
    }
}

/// Handle to a packet stored in a [`PacketSlab`].
///
/// Two machine words of event payload instead of a full [`Packet`]: the
/// index addresses a slab slot, the generation catches stale handles (a slot
/// reused after its packet was released rejects old ids).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PacketId {
    idx: u32,
    gen: u32,
}

impl PacketId {
    pub(crate) fn new(idx: u32, gen: u32) -> Self {
        PacketId { idx, gen }
    }

    /// Slot index (diagnostics).
    pub fn index(self) -> usize {
        self.idx as usize
    }
}

struct Slot {
    packet: Option<Packet>,
    gen: u32,
    refs: u32,
}

/// Generational, refcounted arena for packets in flight.
///
/// The simulator owns one slab per run. Originating a packet inserts it with
/// one reference; multicast fan-out calls [`PacketSlab::dup`] once per
/// replica instead of cloning the struct; every drop / delivery / corruption
/// releases one reference, and the slot is recycled when the count reaches
/// zero. Slot reuse is LIFO, so steady-state traffic touches a small, hot
/// set of slots regardless of how many packets the run moves in total.
pub struct PacketSlab {
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
}

impl Default for PacketSlab {
    fn default() -> Self {
        Self::new()
    }
}

impl PacketSlab {
    pub fn new() -> Self {
        PacketSlab { slots: Vec::new(), free: Vec::new(), live: 0 }
    }

    /// Pre-allocate room for `n` additional live packets.
    pub fn reserve(&mut self, n: usize) {
        self.slots.reserve(n);
        self.free.reserve(n);
    }

    /// Store a packet; the returned id holds one reference.
    pub fn insert(&mut self, packet: Packet) -> PacketId {
        self.live += 1;
        if let Some(idx) = self.free.pop() {
            let slot = &mut self.slots[idx as usize];
            debug_assert!(slot.packet.is_none() && slot.refs == 0);
            slot.packet = Some(packet);
            slot.refs = 1;
            PacketId::new(idx, slot.gen)
        } else {
            let idx = self.slots.len() as u32;
            self.slots.push(Slot { packet: Some(packet), gen: 0, refs: 1 });
            PacketId::new(idx, 0)
        }
    }

    fn slot(&self, id: PacketId) -> &Slot {
        let slot = &self.slots[id.idx as usize];
        assert_eq!(slot.gen, id.gen, "stale PacketId {id:?}");
        slot
    }

    fn slot_mut(&mut self, id: PacketId) -> &mut Slot {
        let slot = &mut self.slots[id.idx as usize];
        assert_eq!(slot.gen, id.gen, "stale PacketId {id:?}");
        slot
    }

    /// Read a stored packet.
    pub fn get(&self, id: PacketId) -> &Packet {
        self.slot(id).packet.as_ref().expect("packet is being delivered")
    }

    /// Add one reference (multicast fan-out: one per replica forwarded).
    pub fn dup(&mut self, id: PacketId) {
        self.slot_mut(id).refs += 1;
    }

    /// Drop one reference; the slot is recycled when none remain.
    pub fn release(&mut self, id: PacketId) {
        let slot = self.slot_mut(id);
        debug_assert!(slot.refs > 0, "release of dead PacketId {id:?}");
        slot.refs -= 1;
        if slot.refs == 0 {
            slot.packet = None;
            slot.gen = slot.gen.wrapping_add(1);
            self.free.push(id.idx);
            self.live -= 1;
        }
    }

    /// Move the packet out for local delivery so `&Packet` can be handed to
    /// apps while the simulator stays mutably borrowable. The slot stays
    /// allocated (its reference is still held); pair with
    /// [`PacketSlab::finish_delivery`].
    pub(crate) fn take_for_delivery(&mut self, id: PacketId) -> Packet {
        self.slot_mut(id).packet.take().expect("packet already being delivered")
    }

    /// Return a delivered packet and release the delivering reference.
    pub(crate) fn finish_delivery(&mut self, id: PacketId, packet: Packet) {
        let slot = self.slot_mut(id);
        debug_assert!(slot.refs > 0 && slot.packet.is_none());
        if slot.refs == 1 {
            slot.refs = 0;
            slot.gen = slot.gen.wrapping_add(1);
            self.free.push(id.idx);
            self.live -= 1;
        } else {
            slot.refs -= 1;
            slot.packet = Some(packet);
        }
    }

    /// Packets currently alive (events in flight + queued on links).
    pub fn live(&self) -> usize {
        self.live
    }

    /// Total slots ever allocated (high-water mark of concurrent packets).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn media_accessors() {
        let p = Packet::media(NodeId(1), GroupId(7), SessionId(3), 2, 99, 1000);
        assert_eq!(p.media_fields(), Some((SessionId(3), 2, 99)));
        assert!(p.control_as::<String>().is_none());
        assert_eq!(p.dest, Dest::Group(GroupId(7)));
    }

    #[test]
    fn control_downcast() {
        #[derive(Debug, PartialEq)]
        struct Msg(u32);
        let body: ControlBody = Arc::new(Msg(5));
        let p = Packet::control(NodeId(0), NodeId(2), 64, body);
        assert_eq!(p.control_as::<Msg>(), Some(&Msg(5)));
        assert!(p.control_as::<u64>().is_none());
        assert!(p.media_fields().is_none());
    }

    #[test]
    fn slab_insert_get_release_recycles_slots() {
        let mut slab = PacketSlab::new();
        let a = slab.insert(Packet::media(NodeId(1), GroupId(0), SessionId(0), 0, 1, 100));
        let b = slab.insert(Packet::media(NodeId(2), GroupId(0), SessionId(0), 0, 2, 200));
        assert_eq!(slab.live(), 2);
        assert_eq!(slab.get(a).size, 100);
        assert_eq!(slab.get(b).size, 200);
        slab.release(a);
        assert_eq!(slab.live(), 1);
        // The freed slot is reused with a bumped generation.
        let c = slab.insert(Packet::media(NodeId(3), GroupId(0), SessionId(0), 0, 3, 300));
        assert_eq!(c.index(), a.index());
        assert_ne!(c, a);
        assert_eq!(slab.capacity(), 2);
    }

    #[test]
    #[should_panic(expected = "stale PacketId")]
    fn slab_rejects_stale_ids() {
        let mut slab = PacketSlab::new();
        let a = slab.insert(Packet::media(NodeId(1), GroupId(0), SessionId(0), 0, 1, 100));
        slab.release(a);
        let _ = slab.insert(Packet::media(NodeId(2), GroupId(0), SessionId(0), 0, 2, 200));
        let _ = slab.get(a);
    }

    #[test]
    fn slab_dup_keeps_packet_until_last_release() {
        let mut slab = PacketSlab::new();
        let a = slab.insert(Packet::media(NodeId(1), GroupId(0), SessionId(0), 0, 1, 100));
        slab.dup(a);
        slab.dup(a);
        slab.release(a);
        slab.release(a);
        assert_eq!(slab.live(), 1);
        assert_eq!(slab.get(a).size, 100);
        slab.release(a);
        assert_eq!(slab.live(), 0);
    }

    #[test]
    fn slab_delivery_takes_and_restores() {
        let mut slab = PacketSlab::new();
        let a = slab.insert(Packet::media(NodeId(1), GroupId(0), SessionId(0), 0, 1, 100));
        slab.dup(a); // one queued replica elsewhere
        let pkt = slab.take_for_delivery(a);
        assert_eq!(pkt.size, 100);
        slab.finish_delivery(a, pkt);
        // The queued replica still resolves.
        assert_eq!(slab.get(a).size, 100);
        let pkt = slab.take_for_delivery(a);
        slab.finish_delivery(a, pkt);
        assert_eq!(slab.live(), 0);
    }

    #[test]
    fn clone_shares_control_body() {
        let body: ControlBody = Arc::new(42u32);
        let p = Packet::control(NodeId(0), NodeId(1), 64, Arc::clone(&body));
        let q = p.clone();
        assert_eq!(q.control_as::<u32>(), Some(&42));
        // Arc count: `body`, `p`, `q`.
        assert_eq!(Arc::strong_count(&body), 3);
    }
}
