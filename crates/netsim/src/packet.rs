//! Packets, addresses, and payloads.
//!
//! Two kinds of traffic cross the simulated network:
//!
//! * **Media** packets, multicast to a per-layer group. They carry a session
//!   id, layer number and per-group sequence number — exactly the fields a
//!   receiver needs to account for loss the way RTCP does (sequence gaps).
//! * **Control** packets, unicast between receivers and the controller agent
//!   (registrations, loss reports, subscription suggestions). Their concrete
//!   message types belong to the protocol crates above; the simulator treats
//!   them as opaque shared payloads with an explicitly declared wire size so
//!   control traffic competes for bandwidth and can be lost, as in the paper.

use crate::multicast::GroupId;
use crate::node::NodeId;
use std::any::Any;
use std::fmt;
use std::sync::Arc;

/// A multicast session (one layered stream = a set of groups).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SessionId(pub u32);

/// Opaque, shareable control-message body.
///
/// Protocol crates downcast this to their own message enum. Sharing via
/// `Arc` keeps multicast fan-out and retransmission allocation-free.
pub type ControlBody = Arc<dyn Any + Send + Sync>;

/// Where a packet is headed.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Dest {
    /// Unicast to one node (delivered to all apps on it).
    Node(NodeId),
    /// Multicast to a group.
    Group(GroupId),
}

/// What a packet carries.
#[derive(Clone)]
pub enum Payload {
    /// A media packet of `layer` within `session`, with a per-group
    /// sequence number stamped by the source.
    Media { session: SessionId, layer: u8, seq: u64 },
    /// An opaque control message.
    Control(ControlBody),
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Payload::Media { session, layer, seq } => {
                write!(f, "Media(s{}, l{}, #{})", session.0, layer, seq)
            }
            Payload::Control(_) => write!(f, "Control(..)"),
        }
    }
}

/// One packet in flight.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Originating node.
    pub src: NodeId,
    /// Destination address.
    pub dest: Dest,
    /// Wire size in bytes (headers included); drives serialization time
    /// and queue occupancy.
    pub size: u32,
    /// The payload.
    pub payload: Payload,
}

impl Packet {
    /// Construct a media packet.
    pub fn media(
        src: NodeId,
        group: GroupId,
        session: SessionId,
        layer: u8,
        seq: u64,
        size: u32,
    ) -> Self {
        Packet {
            src,
            dest: Dest::Group(group),
            size,
            payload: Payload::Media { session, layer, seq },
        }
    }

    /// Construct a unicast control packet.
    pub fn control(src: NodeId, dest: NodeId, size: u32, body: ControlBody) -> Self {
        Packet { src, dest: Dest::Node(dest), size, payload: Payload::Control(body) }
    }

    /// The media fields, if this is a media packet.
    pub fn media_fields(&self) -> Option<(SessionId, u8, u64)> {
        match self.payload {
            Payload::Media { session, layer, seq } => Some((session, layer, seq)),
            Payload::Control(_) => None,
        }
    }

    /// Downcast a control payload to a concrete message type.
    pub fn control_as<T: 'static>(&self) -> Option<&T> {
        match &self.payload {
            Payload::Control(body) => body.downcast_ref::<T>(),
            Payload::Media { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn media_accessors() {
        let p = Packet::media(NodeId(1), GroupId(7), SessionId(3), 2, 99, 1000);
        assert_eq!(p.media_fields(), Some((SessionId(3), 2, 99)));
        assert!(p.control_as::<String>().is_none());
        assert_eq!(p.dest, Dest::Group(GroupId(7)));
    }

    #[test]
    fn control_downcast() {
        #[derive(Debug, PartialEq)]
        struct Msg(u32);
        let body: ControlBody = Arc::new(Msg(5));
        let p = Packet::control(NodeId(0), NodeId(2), 64, body);
        assert_eq!(p.control_as::<Msg>(), Some(&Msg(5)));
        assert!(p.control_as::<u64>().is_none());
        assert!(p.media_fields().is_none());
    }

    #[test]
    fn clone_shares_control_body() {
        let body: ControlBody = Arc::new(42u32);
        let p = Packet::control(NodeId(0), NodeId(1), 64, Arc::clone(&body));
        let q = p.clone();
        assert_eq!(q.control_as::<u32>(), Some(&42));
        // Arc count: `body`, `p`, `q`.
        assert_eq!(Arc::strong_count(&body), 3);
    }
}
