//! One benchmark per table/figure of the paper: times a scaled-down version
//! of each regeneration (the full-length runs live in the `fig*` binaries).
//! Useful both as a performance regression net for the experiment harness
//! and as a single `cargo bench` entry point that exercises every
//! experiment path.

use criterion::{criterion_group, criterion_main, Criterion};
use netsim::SimDuration;
use scenarios::experiments;
use std::hint::black_box;
use traffic::TrafficModel;

const QUICK: SimDuration = SimDuration(60_000_000_000); // 60 simulated s

fn bench_table1(c: &mut Criterion) {
    use toposense::history::{BwEquality, CongestionHistory};
    c.bench_function("table1_decision_lookup", |b| {
        b.iter(|| {
            let mut n = 0u32;
            for h in 0..8u8 {
                for bw in [BwEquality::Lesser, BwEquality::Equal, BwEquality::Greater] {
                    let a = toposense::decision::decide(
                        toposense::NodeKind::Leaf,
                        CongestionHistory::from_bits(h),
                        bw,
                    );
                    n = n.wrapping_add(matches!(a, toposense::Action::AddLayer) as u32);
                }
            }
            black_box(n)
        });
    });
}

fn bench_fig1(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_motivation");
    g.sample_size(10);
    g.bench_function("both_modes_60s", |b| {
        b.iter(|| black_box(experiments::fig1_motivation(QUICK, 1)));
    });
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_stability_a");
    g.sample_size(10);
    g.bench_function("two_points_60s", |b| {
        b.iter(|| {
            black_box(experiments::fig6_stability_a(&[1, 2], &[TrafficModel::Cbr], QUICK, 1))
        });
    });
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_stability_b");
    g.sample_size(10);
    g.bench_function("two_points_60s", |b| {
        b.iter(|| {
            black_box(experiments::fig7_stability_b(&[2, 4], &[TrafficModel::Cbr], QUICK, 1))
        });
    });
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_fairness");
    g.sample_size(10);
    g.bench_function("four_sessions_60s", |b| {
        b.iter(|| {
            black_box(experiments::fig8_fairness(&[4], &[TrafficModel::Vbr { p: 3.0 }], QUICK, 1))
        });
    });
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_timeseries");
    g.sample_size(10);
    g.bench_function("four_vbr_sessions_60s", |b| {
        b.iter(|| black_box(experiments::fig9_timeseries(QUICK, 1)));
    });
    g.finish();
}

fn bench_fig10(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_staleness");
    g.sample_size(10);
    g.bench_function("two_staleness_points_60s", |b| {
        b.iter(|| black_box(experiments::fig10_staleness(&[1], &[0, 8], QUICK, 1)));
    });
    g.finish();
}

fn bench_convergence(c: &mut Criterion) {
    let mut g = c.benchmark_group("convergence_topology_a");
    g.sample_size(10);
    g.bench_function("cbr_60s", |b| {
        b.iter(|| black_box(experiments::convergence_topology_a(2, TrafficModel::Cbr, QUICK, 1)));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_fig1,
    bench_fig6,
    bench_fig7,
    bench_fig8,
    bench_fig9,
    bench_fig10,
    bench_convergence
);
criterion_main!(benches);
