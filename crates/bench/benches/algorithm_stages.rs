//! Micro-benchmarks of the five TopoSense stages and the full algorithm
//! driver, across session-tree sizes. These quantify the paper's implicit
//! scalability claim: the controller's per-interval work is linear-ish in
//! the number of receivers/nodes of its domain.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::HashMap;
use std::hint::black_box;
use toposense::algorithm::{AlgorithmInputs, AlgorithmState};
use toposense::stages::congestion::{self, LeafObs};
use toposense::stages::{bottleneck, sharing};
use toposense::Config;
use toposense_bench::{balanced_session_tree, registry_for_leaves, reports_for_leaves};
use traffic::LayerSpec;

/// Tree sizes: fanout 4 with depths 2..4 = 16, 64, 256 leaves.
const DEPTHS: [usize; 3] = [2, 3, 4];

fn bench_congestion_stage(c: &mut Criterion) {
    let mut g = c.benchmark_group("stage1_congestion");
    let cfg = Config::default();
    for depth in DEPTHS {
        let (tree, leaves) = balanced_session_tree(0, 4, depth);
        let obs: HashMap<_, _> = leaves
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                (n, LeafObs { loss: if i % 3 == 0 { 0.1 } else { 0.0 }, bytes: 25_000, level: 3 })
            })
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(leaves.len()), &depth, |b, _| {
            b.iter(|| black_box(congestion::compute(&tree, &obs, &cfg)));
        });
    }
    g.finish();
}

fn bench_bottleneck_stage(c: &mut Criterion) {
    let mut g = c.benchmark_group("stage3_bottleneck");
    for depth in DEPTHS {
        let (tree, leaves) = balanced_session_tree(0, 4, depth);
        g.bench_with_input(BenchmarkId::from_parameter(leaves.len()), &depth, |b, _| {
            b.iter(|| {
                black_box(bottleneck::compute(&tree, |l| (l.0 % 7 == 0).then_some(500_000.0)))
            });
        });
    }
    g.finish();
}

fn bench_sharing_stage(c: &mut Criterion) {
    let mut g = c.benchmark_group("stage4_sharing");
    let spec = LayerSpec::paper_default();
    for sessions in [2usize, 8, 16] {
        let trees: Vec<_> =
            (0..sessions).map(|i| balanced_session_tree(i as u32, 2, 3).0).collect();
        let specs: Vec<&LayerSpec> = trees.iter().map(|_| &spec).collect();
        g.bench_with_input(BenchmarkId::from_parameter(sessions), &sessions, |b, _| {
            b.iter(|| {
                black_box(sharing::compute(&trees, &specs, |l| {
                    (l.0 % 3 == 0).then_some(1_000_000.0)
                }))
            });
        });
    }
    g.finish();
}

fn bench_full_algorithm(c: &mut Criterion) {
    let mut g = c.benchmark_group("algorithm_full_interval");
    let spec = LayerSpec::paper_default();
    for depth in DEPTHS {
        let (tree, leaves) = balanced_session_tree(0, 4, depth);
        let reports = reports_for_leaves(0, &leaves, 3, 4);
        let registry = registry_for_leaves(0, &leaves);
        let trees = vec![tree];
        g.bench_with_input(BenchmarkId::from_parameter(leaves.len()), &depth, |b, _| {
            let mut state = AlgorithmState::new(Config::default(), 1);
            let mut t = 0u64;
            b.iter(|| {
                t += 2;
                let inputs = AlgorithmInputs {
                    now: netsim::SimTime::from_secs(t),
                    interval: netsim::SimDuration::from_secs(2),
                    trees: &trees,
                    specs: &[&spec],
                    registry: &registry,
                    reports: &reports,
                };
                black_box(state.run(&inputs))
            });
        });
    }
    g.finish();
}

fn bench_decision_table(c: &mut Criterion) {
    use toposense::history::{BwEquality, CongestionHistory};
    c.bench_function("table1_full_enumeration", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for kind in [toposense::NodeKind::Leaf, toposense::NodeKind::Internal] {
                for h in 0..8u8 {
                    for bw in [BwEquality::Lesser, BwEquality::Equal, BwEquality::Greater] {
                        let a =
                            toposense::decision::decide(kind, CongestionHistory::from_bits(h), bw);
                        acc += matches!(a, toposense::Action::Maintain) as usize;
                    }
                }
            }
            black_box(acc)
        });
    });
}

criterion_group!(
    benches,
    bench_congestion_stage,
    bench_bottleneck_stage,
    bench_sharing_stage,
    bench_full_algorithm,
    bench_decision_table
);
criterion_main!(benches);
