//! Cost of the telemetry layer around the algorithm driver.
//!
//! Three points per tree size: the plain interval (telemetry off — the
//! baseline every other bench measures), the audited interval draining
//! into a memory sink (decision records + stage timers), and the audited
//! interval serialized to JSONL (what `QUICKSTART_TELEMETRY` pays). The
//! first two bracket the "zero when disabled / bounded when enabled"
//! claim of DESIGN.md §10; `CRITERION_JSON` folds the medians into the
//! same `BENCH_*.json` report as the stage benches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use telemetry::{IntervalAudit, Telemetry};
use toposense::algorithm::{AlgorithmInputs, AlgorithmState};
use toposense::Config;
use toposense_bench::{balanced_session_tree, registry_for_leaves, reports_for_leaves};
use traffic::LayerSpec;

/// Tree sizes: fanout 4 with depths 2..4 = 16, 64, 256 leaves.
const DEPTHS: [usize; 3] = [2, 3, 4];

fn inputs_for<'a>(
    t: u64,
    trees: &'a [topology::SessionTree],
    specs: &'a [&'a LayerSpec],
    registry: &'a [(netsim::AppId, netsim::NodeId, netsim::SessionId)],
    reports: &'a [toposense::algorithm::ReceiverReport],
) -> AlgorithmInputs<'a> {
    AlgorithmInputs {
        now: netsim::SimTime::from_secs(t),
        interval: netsim::SimDuration::from_secs(2),
        trees,
        specs,
        registry,
        reports,
    }
}

fn bench_audited_interval(c: &mut Criterion) {
    let spec = LayerSpec::paper_default();
    for (mode, audited, sink) in
        [("off", false, false), ("memory_sink", true, true), ("jsonl_encode", true, false)]
    {
        let mut g = c.benchmark_group(format!("telemetry_{mode}"));
        for depth in DEPTHS {
            let (tree, leaves) = balanced_session_tree(0, 4, depth);
            let reports = reports_for_leaves(0, &leaves, 3, 4);
            let registry = registry_for_leaves(0, &leaves);
            let trees = vec![tree];
            let specs = vec![&spec];
            g.bench_with_input(BenchmarkId::from_parameter(leaves.len()), &depth, |b, _| {
                let mut state = AlgorithmState::new(Config::default(), 1);
                let (tel, _store) = Telemetry::memory();
                let mut t = 0u64;
                b.iter(|| {
                    t += 2;
                    let inputs = inputs_for(t, &trees, &specs, &registry, &reports);
                    if !audited {
                        return black_box(state.run(&inputs)).suggestions.len();
                    }
                    let mut audit = IntervalAudit::new(t / 2, t * 1_000_000_000);
                    let out = state.run_audited(&inputs, Some(&mut audit));
                    if sink {
                        for record in audit.records() {
                            tel.emit(&record);
                        }
                    } else {
                        let bytes: usize = audit.records().iter().map(|r| r.to_jsonl().len()).sum();
                        black_box(bytes);
                    }
                    black_box(out).suggestions.len()
                });
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_audited_interval);
criterion_main!(benches);
