//! Raw event throughput of the packet-level simulator fast path.
//!
//! Two groups:
//!
//! * `netsim_event_throughput` — steady-state event processing on the
//!   largetree media workload (balanced fanout-10 depth-3 domain, CBR
//!   media to every other leaf), under both event-queue backends. The
//!   domain is built and warmed once; each iteration advances the
//!   simulation by a fixed 100 ms sim-time slice, so the measurement is
//!   pure event-loop cost with no topology-construction overhead. The
//!   throughput line (`elem/s`) is events per wall second.
//! * `netsim_seed_sweep` — a full scenario run swept over 1 and 4 seeds
//!   via `run_seeds`. The measured 4-vs-1 wall-time ratio is a *sweep
//!   overhead* check, not a parallel speedup: with `w` workers the ideal
//!   ratio is `4 / min(4, w)`, so on a 1-worker box anything close to 4.0
//!   just means the sequential sweep adds no per-seed overhead. The
//!   worker count is baked into each benchmark id (`..._w{N}`) so the
//!   recorded JSON can never be read without it.
//!
//! Regenerate the JSON with
//! `CRITERION_JSON=/tmp/netsim.json cargo bench -p toposense-bench --bench netsim_fastpath`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use netsim::{QueueBackend, SimDuration, SimTime};
use scenarios::runner::{run_seeds, Scenario};
use topology::generators::topology_a_default;
use toposense_bench::media_sim;
use traffic::TrafficModel;

fn bench_event_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("netsim_event_throughput");
    g.sample_size(10);
    let slice = SimDuration::from_millis(100);
    for (name, backend) in
        [("wheel", QueueBackend::CalendarWheel), ("heap", QueueBackend::BinaryHeap)]
    {
        // Fanout 10, depth 3: 1,111 nodes, 500 sinks, 200 pps of media.
        let mut m = media_sim(10, 3, 2, 200, backend);
        // Warm past tree setup (grafts complete within the first second)
        // so every measured slice is steady-state media forwarding.
        m.sim.run_until(SimTime::from_secs(1));
        let warm_events = m.sim.events_processed();
        let mut deadline = m.sim.now() + slice;
        m.sim.run_until(deadline);
        let events_per_slice = m.sim.events_processed() - warm_events;
        g.throughput(Throughput::Elements(events_per_slice));
        g.bench_with_input(BenchmarkId::new(name, "largetree_100ms"), &(), |b, _| {
            b.iter(|| {
                deadline += slice;
                m.sim.run_until(deadline);
                m.sim.events_processed()
            });
        });
    }
    g.finish();
}

fn bench_seed_sweep(c: &mut Criterion) {
    let workers = rayon::current_num_threads();
    let mut g = c.benchmark_group("netsim_seed_sweep");
    g.sample_size(10);
    let base = Scenario::new(topology_a_default(2), TrafficModel::Cbr, 1)
        .with_duration(SimDuration::from_secs(10));
    for n in [1u64, 4] {
        let seeds: Vec<u64> = (1..=n).collect();
        g.bench_with_input(
            BenchmarkId::new("sweep", format!("{n}seeds_w{workers}")),
            &seeds,
            |b, seeds| {
                b.iter(|| run_seeds(&base, seeds).len());
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_event_throughput, bench_seed_sweep);
criterion_main!(benches);
