//! Benchmarks of the discrete-event simulator substrate: event throughput,
//! link queueing, multicast membership churn, and routing construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use netsim::sim::{NetworkBuilder, SimConfig};
use netsim::{App, Ctx, EventQueue, LinkConfig, NodeId, Packet, SimDuration, SimTime};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    for n in [1_000u64, 10_000, 100_000] {
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::new("schedule_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::new();
                for i in 0..n {
                    // Pseudo-random interleaving without an RNG in the loop.
                    let t = (i * 2_654_435_761) % 1_000_000;
                    q.schedule(
                        SimTime::from_millis(t),
                        netsim::Event::Timer { app: netsim::AppId(0), token: i },
                    );
                }
                let mut count = 0u64;
                while q.pop().is_some() {
                    count += 1;
                }
                black_box(count)
            });
        });
    }
    g.finish();
}

/// A source flooding one multicast group; receivers at every leaf of a
/// star. Measures end-to-end simulated-packet throughput.
fn bench_multicast_fanout(c: &mut Criterion) {
    struct Source {
        group: netsim::GroupId,
        rate_pps: u64,
        seq: u64,
    }
    impl App for Source {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(SimDuration::from_millis(1), 0);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
            ctx.send_media(self.group, netsim::SessionId(0), 0, self.seq, 1000);
            self.seq += 1;
            ctx.set_timer(SimDuration(1_000_000_000 / self.rate_pps), 0);
        }
    }
    struct Sink {
        group: netsim::GroupId,
        got: u64,
    }
    impl App for Sink {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.join(self.group);
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _p: &Packet) {
            self.got += 1;
        }
    }

    let mut g = c.benchmark_group("multicast_fanout");
    g.sample_size(10);
    for receivers in [4usize, 16, 64] {
        g.bench_with_input(BenchmarkId::new("sim_100s", receivers), &receivers, |b, &receivers| {
            b.iter(|| {
                let mut nb = NetworkBuilder::new(SimConfig::default());
                let src = nb.add_node("src");
                let hub = nb.add_node("hub");
                nb.add_link(src, hub, LinkConfig::kbps(100_000.0));
                let leaves: Vec<NodeId> = (0..receivers)
                    .map(|i| {
                        let n = nb.add_node(format!("r{i}"));
                        nb.add_link(hub, n, LinkConfig::kbps(100_000.0));
                        n
                    })
                    .collect();
                let mut sim = nb.build();
                let group = sim.create_group(src);
                for &leaf in &leaves {
                    sim.add_app(leaf, Box::new(Sink { group, got: 0 }));
                }
                sim.add_app(src, Box::new(Source { group, rate_pps: 100, seq: 0 }));
                sim.run_until(SimTime::from_secs(100));
                black_box(sim.events_processed())
            });
        });
    }
    g.finish();
}

fn bench_routing_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("routing_build");
    for nodes in [16usize, 64, 256] {
        g.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, &nodes| {
            b.iter(|| {
                // A random-ish tree: node i links to i/2 (heap shape).
                let mut nb = NetworkBuilder::new(SimConfig::default());
                let ids: Vec<NodeId> = (0..nodes).map(|i| nb.add_node(format!("n{i}"))).collect();
                for i in 1..nodes {
                    nb.add_link(ids[i / 2], ids[i], LinkConfig::kbps(1000.0));
                }
                let sim = nb.build();
                black_box(sim.network().node_count())
            });
        });
    }
    g.finish();
}

/// Full Topology B scenario wall-clock: how fast the whole reproduction
/// harness simulates 60 seconds of the paper's hardest setup.
fn bench_scenario_topology_b(c: &mut Criterion) {
    use scenarios::{run, Scenario};
    let mut g = c.benchmark_group("scenario_topology_b_60s");
    g.sample_size(10);
    for sessions in [4usize, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(sessions), &sessions, |b, &n| {
            b.iter(|| {
                let s = Scenario::new(
                    topology::generators::topology_b_default(n),
                    traffic::TrafficModel::Vbr { p: 3.0 },
                    1,
                )
                .with_duration(SimDuration::from_secs(60));
                black_box(run(&s).events)
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_multicast_fanout,
    bench_routing_build,
    bench_scenario_topology_b
);
criterion_main!(benches);
