//! Sharded parallel runner vs the sequential oracle on the federated
//! packet world (DESIGN.md §17).
//!
//! Both sides run the identical workload — 4 federation domains of a
//! balanced fanout-10 depth-3 tree (4,444 nodes each) fed across 20 ms
//! handoffs — and the differential suite pins them bit-identical, so the
//! only thing measured here is the runner: one wheel in one thread versus
//! one wheel per shard under conservative barrier epochs. The domain is
//! built and warmed once; each iteration advances a fixed 100 ms sim-time
//! slice, so the measurement is pure event-loop cost.
//!
//! The worker count is baked into the sharded benchmark id (`..._w{N}`):
//! on a 1-worker box the sharded run is the sequential wheel plus barrier
//! bookkeeping, and its numbers measure that overhead — *not* parallel
//! speedup. Speedup claims require `w > 1` in the recorded id.
//!
//! Regenerate the JSON with
//! `CRITERION_JSON=/tmp/sharded.json cargo bench -p toposense-bench --bench netsim_sharded`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use netsim::{QueueBackend, SimDuration, SimTime};
use toposense_bench::{federated_media_sharded, federated_media_world, FederationWorldParams};

fn params() -> FederationWorldParams {
    FederationWorldParams {
        domains: 4,
        fanout: 10,
        depth: 3,
        sink_stride: 2,
        rate_pps: 200,
        handoff_delay: SimDuration::from_millis(20),
        backend: QueueBackend::CalendarWheel,
        trace_cap: 0,
    }
}

fn bench_sharded_vs_oracle(c: &mut Criterion) {
    let mut g = c.benchmark_group("netsim_sharded");
    g.sample_size(10);
    let slice = SimDuration::from_millis(100);

    // Sequential oracle: the same federated world in a single simulator.
    {
        let mut w = federated_media_world(params());
        w.oracle.run_until(SimTime::from_secs(1));
        let warm = w.oracle.events_processed();
        let mut deadline = w.oracle.now() + slice;
        w.oracle.run_until(deadline);
        g.throughput(Throughput::Elements(w.oracle.events_processed() - warm));
        g.bench_with_input(BenchmarkId::new("oracle", "federated_100ms"), &(), |b, _| {
            b.iter(|| {
                deadline += slice;
                w.oracle.run_until(deadline);
                w.oracle.events_processed()
            });
        });
    }

    // Sharded runner: per-domain wheels, conservative 20 ms lookahead.
    {
        let mut w = federated_media_sharded(params());
        let workers = w.sharded.workers();
        w.sharded.run_until(SimTime::from_secs(1));
        let warm = w.sharded.events_processed();
        let mut deadline = w.sharded.now() + slice;
        w.sharded.run_until(deadline);
        g.throughput(Throughput::Elements(w.sharded.events_processed() - warm));
        g.bench_with_input(
            BenchmarkId::new(format!("sharded_w{workers}"), "federated_100ms"),
            &(),
            |b, _| {
                b.iter(|| {
                    deadline += slice;
                    w.sharded.run_until(deadline);
                    w.sharded.events_processed()
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_sharded_vs_oracle);
criterion_main!(benches);
