//! Full vs change-driven pipeline on a large session tree.
//!
//! An 11,111-node balanced domain (fanout 10, depth 4 — 10,000 receivers)
//! is driven with deterministic report churn at 1 %, 10 %, and 100 % dirty
//! fractions; each fraction is run through both `AlgorithmState::run`
//! (every slot, every interval) and `AlgorithmState::run_incremental`
//! (dirty subtrees only). Both paths see byte-identical report streams, so
//! the ratio is pure recomputation cost. `BENCH_incremental.json` records
//! the medians; regenerate it with
//! `CRITERION_JSON=/tmp/inc.json cargo bench -p toposense-bench --bench incremental`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use toposense::algorithm::{AlgorithmInputs, AlgorithmState};
use toposense::Config;
use toposense_bench::{
    balanced_session_tree, churn_fraction, registry_for_leaves, reports_for_leaves,
};
use traffic::LayerSpec;

/// Fanout 10, depth 4: 10,000 leaves, 11,111 slots.
const FANOUT: usize = 10;
const DEPTH: usize = 4;
const DIRTY_PERCENTS: [u32; 3] = [1, 10, 100];

fn bench_incremental_vs_full(c: &mut Criterion) {
    let spec = LayerSpec::paper_default();
    let specs: Vec<&LayerSpec> = vec![&spec];
    let (tree, leaves) = balanced_session_tree(0, FANOUT, DEPTH);
    let registry = registry_for_leaves(0, &leaves);
    let trees = vec![tree];

    let mut g = c.benchmark_group("incremental_pipeline");
    g.sample_size(10);
    for pct in DIRTY_PERCENTS {
        let frac = pct as f64 / 100.0;
        for (mode, incremental) in [("full", false), ("incremental", true)] {
            g.bench_with_input(
                BenchmarkId::new(mode, format!("{pct}pct_dirty")),
                &frac,
                |b, &frac| {
                    let mut state = AlgorithmState::new(Config::default(), 7);
                    let mut reports = reports_for_leaves(0, &leaves, 3, 0);
                    let mut t = 0u64;
                    // Warm both paths into steady state: the incremental
                    // path's first run is a full fallback that builds the
                    // cache, and the first few intervals walk the domain
                    // up to its converged subscription levels. Receivers
                    // follow the controller's suggestions (as real ones
                    // do), so convergence actually lands.
                    for _ in 0..8 {
                        t += 2;
                        churn_fraction(&mut reports, frac, t);
                        let inputs = inputs_at(t, &trees, &specs, &registry, &reports);
                        let out = if incremental {
                            state.run_incremental(&inputs)
                        } else {
                            state.run(&inputs)
                        };
                        follow_suggestions(&out, &mut reports);
                    }
                    b.iter(|| {
                        t += 2;
                        churn_fraction(&mut reports, frac, t);
                        let inputs = inputs_at(t, &trees, &specs, &registry, &reports);
                        let out = if incremental {
                            state.run_incremental(&inputs)
                        } else {
                            state.run(&inputs)
                        };
                        follow_suggestions(&out, &mut reports);
                        black_box(out.root_supply[0])
                    });
                },
            );
        }
    }
    g.finish();
}

/// Receivers obey the controller: next interval's reports carry the level
/// the controller just suggested. Without this the synthetic domain never
/// converges (the controller probes up, nobody follows, supply oscillates
/// everywhere) and every fraction degenerates to a full recompute.
/// Suggestions come out in registry order — the same order as the reports
/// — so the hand-off is a straight zip.
fn follow_suggestions(
    out: &toposense::algorithm::AlgorithmOutputs,
    reports: &mut [toposense::algorithm::ReceiverReport],
) {
    for (r, s) in reports.iter_mut().zip(&out.suggestions) {
        debug_assert_eq!(r.receiver, s.receiver);
        r.level = s.level;
    }
}

fn inputs_at<'a>(
    t: u64,
    trees: &'a [topology::SessionTree],
    specs: &'a [&'a LayerSpec],
    registry: &'a [(netsim::AppId, netsim::NodeId, netsim::SessionId)],
    reports: &'a [toposense::algorithm::ReceiverReport],
) -> AlgorithmInputs<'a> {
    AlgorithmInputs {
        now: netsim::SimTime::from_secs(t),
        interval: netsim::SimDuration::from_secs(2),
        trees,
        specs,
        registry,
        reports,
    }
}

criterion_group!(benches, bench_incremental_vs_full);
criterion_main!(benches);
