//! Shared helpers for the criterion benchmarks: synthetic session trees and
//! report sets of controllable size, so algorithm stages can be benched in
//! isolation from the simulator.

use netsim::{AppId, DirLinkId, GroupId, GroupSnapshot, NodeId, SessionId, SimTime};
use topology::discovery::{LinkView, TopologyView};
use topology::SessionTree;
use toposense::algorithm::ReceiverReport;

/// Build a balanced session tree with `fanout^depth` leaves.
///
/// Node 0 is the root/source; nodes are numbered breadth-first. Returns the
/// tree plus the list of leaf nodes.
pub fn balanced_session_tree(
    session: u32,
    fanout: usize,
    depth: usize,
) -> (SessionTree, Vec<NodeId>) {
    assert!(fanout >= 1 && depth >= 1);
    let mut links = Vec::new();
    let mut active = Vec::new();
    let mut members = Vec::new();
    let mut next_id = 1u32;
    let mut frontier = vec![0u32];
    let mut link_id = 0u32;
    for level in 0..depth {
        let mut next_frontier = Vec::new();
        for &parent in &frontier {
            for _ in 0..fanout {
                let child = next_id;
                next_id += 1;
                links.push(LinkView {
                    id: DirLinkId(link_id),
                    from: NodeId(parent),
                    to: NodeId(child),
                });
                active.push(DirLinkId(link_id));
                link_id += 1;
                if level + 1 == depth {
                    members.push(NodeId(child));
                }
                next_frontier.push(child);
            }
        }
        frontier = next_frontier;
    }
    let view = TopologyView {
        time: SimTime::ZERO,
        links,
        groups: vec![GroupSnapshot {
            group: GroupId(session),
            root: NodeId(0),
            active_links: active,
            member_nodes: members.clone(),
        }],
    };
    let tree = SessionTree::build(&view, SessionId(session), &[GroupId(session)])
        .expect("balanced tree is valid");
    (tree, members)
}

/// One report per leaf with a deterministic loss pattern (every
/// `lossy_mod`-th receiver sees 10 % loss; `0` disables loss entirely).
pub fn reports_for_leaves(
    session: u32,
    leaves: &[NodeId],
    level: u8,
    lossy_mod: usize,
) -> Vec<ReceiverReport> {
    leaves
        .iter()
        .enumerate()
        .map(|(i, &node)| {
            let lossy = lossy_mod != 0 && i % lossy_mod == 0;
            ReceiverReport {
                receiver: AppId(1000 + i as u32),
                node,
                session: SessionId(session),
                level,
                received: if lossy { 90 } else { 100 },
                lost: if lossy { 10 } else { 0 },
                bytes: 25_000,
            }
        })
        .collect()
}

/// The registry matching [`reports_for_leaves`].
pub fn registry_for_leaves(session: u32, leaves: &[NodeId]) -> Vec<(AppId, NodeId, SessionId)> {
    leaves
        .iter()
        .enumerate()
        .map(|(i, &node)| (AppId(1000 + i as u32), node, SessionId(session)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_tree_shape() {
        let (tree, leaves) = balanced_session_tree(0, 3, 3);
        assert_eq!(leaves.len(), 27);
        assert_eq!(tree.tree().len(), 1 + 3 + 9 + 27);
        assert!(leaves.iter().all(|&l| tree.tree().is_leaf(l)));
    }

    #[test]
    fn reports_match_registry() {
        let (_, leaves) = balanced_session_tree(0, 2, 2);
        let reports = reports_for_leaves(0, &leaves, 3, 2);
        let registry = registry_for_leaves(0, &leaves);
        assert_eq!(reports.len(), registry.len());
        assert!(reports
            .iter()
            .zip(&registry)
            .all(|(r, &(a, n, s))| r.receiver == a && r.node == n && r.session == s));
    }
}
