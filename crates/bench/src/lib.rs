//! Shared helpers for the criterion benchmarks: synthetic session trees and
//! report sets of controllable size, so algorithm stages can be benched in
//! isolation from the simulator.
//!
//! The generators themselves live in [`scenarios::largetree`] (they also
//! feed the large-tree smoke tests); this crate re-exports them so every
//! bench keeps a single import path.

pub use scenarios::largetree::{
    balanced_session_tree, churn_fraction, federated_media_sharded, federated_media_world,
    media_sim, registry_for_leaves, reports_for_leaves, FederationWorldParams, MediaSim,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_match_registry() {
        let (_, leaves) = balanced_session_tree(0, 2, 2);
        let reports = reports_for_leaves(0, &leaves, 3, 2);
        let registry = registry_for_leaves(0, &leaves);
        assert_eq!(reports.len(), registry.len());
        assert!(reports
            .iter()
            .zip(&registry)
            .all(|(r, &(a, n, s))| r.receiver == a && r.node == n && r.session == s));
    }
}
